//! The SoC bus and its peripherals.
//!
//! The attached hardware "expects to be connected to an SoC bus" and is
//! clocked by the synchronization device's generated cycles. Peripherals
//! receive the current generated-cycle count with every transaction, so
//! time-dependent behaviour (timer expiry, UART byte timestamps) is
//! defined in emulated SoC time — which is exactly what makes device
//! drivers validated on this platform cycle-accurate.
//!
//! Every peripheral is *snapshottable*: [`SocPeripheral::save_state`] /
//! [`SocPeripheral::restore_state`] serialize the device's mutable state
//! to bytes, and [`SocBus::save_state`] bundles the whole bus (devices
//! plus the transaction counter) into a [`SocBusState`]. Session
//! snapshots carry that image, so `snapshot → run → restore → run`
//! replays device behaviour bit-identically — no double-logged UART
//! bytes, no stale timer epochs.
//!
//! For multi-core sharding every shard owns a *private* clone of the
//! device population behind its own [`SharedSocBus`] handle, and a
//! [`ShardArbiter`] exchanges [`SocBusState`] images at every epoch
//! barrier: per-shard states are merged in fixed shard order
//! ([`SocPeripheral::merge_state`]) into one canonical image, which is
//! then broadcast back into every shard's bus. Because shards never
//! touch each other's devices *inside* an epoch, the protocol is
//! schedule-independent — the sequential round-robin scheduler and the
//! thread-parallel scheduler produce bit-identical runs — and every
//! type in the exchange is `Send`, so shards can run on worker threads.

use cabt_isa::codec::{ByteReader, ByteWriter, CodecError};
use std::collections::HashMap;
use std::sync::{Arc, Mutex};

/// A device on the SoC bus. `Send` is a supertrait: buses cross thread
/// boundaries when shards run on worker threads, so devices must not
/// hold thread-bound state.
pub trait SocPeripheral: Send {
    /// `(first, last_exclusive)` address range served by this device.
    fn range(&self) -> (u32, u32);
    /// Handles a read at SoC time `soc_cycle`.
    fn read(&mut self, soc_cycle: u64, addr: u32, size: u32) -> u32;
    /// Handles a write at SoC time `soc_cycle`.
    fn write(&mut self, soc_cycle: u64, addr: u32, size: u32, value: u32);
    /// Transmit log, for peripherals that record output (UARTs).
    fn transmit_log(&self) -> Vec<(u64, u8)> {
        Vec::new()
    }
    /// Serializes the device's mutable state. The encoding is private to
    /// the device — only [`SocPeripheral::restore_state`] of the same
    /// device type needs to understand it. Stateless devices keep the
    /// default (empty) image.
    fn save_state(&self) -> Vec<u8> {
        Vec::new()
    }
    /// Restores state produced by [`SocPeripheral::save_state`] on the
    /// same device type. The default pairs with the default
    /// `save_state`: nothing to restore.
    fn restore_state(&mut self, _state: &[u8]) {}
    /// Deterministically merges per-shard state images into one
    /// canonical image — the epoch-barrier reduction of a sharded run.
    /// `base` is the canonical image every shard started the epoch
    /// from; `shards` are the per-shard images at the barrier, in shard
    /// order. The result must depend only on the inputs (never on host
    /// scheduling), and merging a single unchanged shard must return
    /// `base` bit-identically.
    ///
    /// The default is last-writer-wins at shard granularity: the
    /// highest-numbered shard whose image differs from `base` provides
    /// the whole image (fine for devices that at most one shard
    /// reconfigures per epoch, like the [`Timer`]). Devices with
    /// mergeable state — append-only logs, word-addressed RAM —
    /// override this with a field-level merge.
    fn merge_state(&self, base: &[u8], shards: &[&[u8]]) -> Vec<u8> {
        shards
            .iter()
            .rev()
            .find(|img| **img != base)
            .map_or_else(|| base.to_vec(), |img| img.to_vec())
    }

    /// Barrier-delta support (opt-in). A device whose mutable state is
    /// an append-only log can exchange *only the per-epoch suffix* at
    /// each barrier instead of serializing its full history:
    /// [`SocPeripheral::barrier_delta`] returns the bytes appended
    /// since the last barrier (`None` = no delta support, use the full
    /// `save_state`/`merge_state`/`restore_state` path), and
    /// [`SocPeripheral::apply_barrier`] replaces that unexchanged
    /// suffix with the canonical merged suffix — the concatenation of
    /// every shard's delta in shard order, which is the delta contract
    /// (devices needing a different merge don't opt in). This is what
    /// makes the [`ShardArbiter`] barrier O(epoch traffic) instead of
    /// O(accumulated history) for logging devices like the [`Uart`].
    fn barrier_delta(&self) -> Option<Vec<u8>> {
        None
    }

    /// Applies the canonical merged suffix of one barrier (see
    /// [`SocPeripheral::barrier_delta`]). Only called on devices that
    /// returned `Some` from `barrier_delta`.
    fn apply_barrier(&mut self, merged: &[u8]) {
        let _ = merged;
    }

    /// True if the device's state may have changed since the last
    /// barrier. The [`ShardArbiter`] skips the whole
    /// capture/merge/broadcast for a device no shard reports dirty —
    /// merging unchanged states returns the base bit-identically, so
    /// skipping is purely a cost change. The conservative default
    /// (always dirty) keeps custom devices correct; devices that track
    /// their own traffic override it.
    fn barrier_dirty(&self) -> bool {
        true
    }

    /// Clears the dirty mark after a full-state barrier reconciliation
    /// (delta devices clear their own journals in
    /// [`SocPeripheral::apply_barrier`]). Called *after* the broadcast
    /// `restore_state`, which conservatively re-marks devices dirty.
    fn mark_exchanged(&mut self) {}
}

/// Serialized state of every device on a [`SocBus`] plus the bus's own
/// transaction counter — the device half of a resumable platform image.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct SocBusState {
    /// Per-device state images, in attachment order.
    devices: Vec<Vec<u8>>,
    /// Transactions served at capture time.
    transactions: u64,
}

impl SocBusState {
    /// Transactions the bus had served when this image was captured.
    pub fn transactions(&self) -> u64 {
        self.transactions
    }

    /// Serializes the bus image for a portable snapshot. Per-device
    /// images are opaque bytes (their encoding is private to each
    /// device), carried positionally.
    pub fn encode_into(&self, out: &mut Vec<u8>) {
        let mut w = ByteWriter::new(out);
        w.u64(self.devices.len() as u64);
        for img in &self.devices {
            w.bytes(img);
        }
        w.u64(self.transactions);
    }

    /// Decodes a [`SocBusState::encode_into`] image.
    ///
    /// # Errors
    ///
    /// Returns a [`CodecError`] on truncated or corrupt input.
    pub fn decode(r: &mut ByteReader<'_>) -> Result<Self, CodecError> {
        let ndevices = r.count("bus device images", 8)?;
        let mut devices = Vec::with_capacity(ndevices);
        for _ in 0..ndevices {
            devices.push(r.bytes("device image")?.to_vec());
        }
        Ok(SocBusState {
            devices,
            transactions: r.u64()?,
        })
    }
}

/// A word-level SoC bus with positional device decoding. Unclaimed
/// addresses read zero and ignore writes (open bus) and are *not*
/// counted as transactions — `transactions` counts accesses a device
/// actually served.
#[derive(Default)]
pub struct SocBus {
    devices: Vec<Box<dyn SocPeripheral>>,
    /// Transactions served (diagnostics).
    transactions: u64,
}

impl std::fmt::Debug for SocBus {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("SocBus")
            .field("devices", &self.devices.len())
            .field("transactions", &self.transactions)
            .finish()
    }
}

impl SocBus {
    /// An empty bus.
    pub fn new() -> Self {
        Self::default()
    }

    /// Attaches a peripheral.
    /// The `(first, last_exclusive)` address windows of every attached
    /// device, in attach order — the MMIO half of the static
    /// analyzer's valid-address map.
    pub fn device_ranges(&self) -> Vec<(u32, u32)> {
        self.devices.iter().map(|d| d.range()).collect()
    }

    /// Attaches a peripheral to the bus; later devices win address
    /// overlaps (checked in order).
    pub fn attach(&mut self, dev: Box<dyn SocPeripheral>) {
        self.devices.push(dev);
    }

    /// Number of transactions served so far (open-bus accesses are not
    /// served and not counted).
    pub fn transactions(&self) -> u64 {
        self.transactions
    }

    /// Routes a read.
    pub fn read(&mut self, soc_cycle: u64, addr: u32, size: u32) -> u32 {
        for d in &mut self.devices {
            let (lo, hi) = d.range();
            if (lo..hi).contains(&addr) {
                self.transactions += 1;
                return d.read(soc_cycle, addr, size);
            }
        }
        0
    }

    /// Routes a write.
    pub fn write(&mut self, soc_cycle: u64, addr: u32, size: u32, value: u32) {
        for d in &mut self.devices {
            let (lo, hi) = d.range();
            if (lo..hi).contains(&addr) {
                self.transactions += 1;
                d.write(soc_cycle, addr, size, value);
                return;
            }
        }
    }

    /// Concatenated transmit logs of all logging peripherals on the bus.
    pub fn uart_log(&self) -> Vec<(u64, u8)> {
        self.devices.iter().flat_map(|d| d.transmit_log()).collect()
    }

    /// Captures the state of every attached device plus the transaction
    /// counter.
    pub fn save_state(&self) -> SocBusState {
        SocBusState {
            devices: self.devices.iter().map(|d| d.save_state()).collect(),
            transactions: self.transactions,
        }
    }

    /// Restores a [`SocBus::save_state`] image into this bus.
    ///
    /// # Panics
    ///
    /// Panics if the image was captured from a bus with a different
    /// device count — state is positional, so the device population
    /// must match.
    pub fn restore_state(&mut self, state: &SocBusState) {
        assert_eq!(
            state.devices.len(),
            self.devices.len(),
            "SocBusState captured from a bus with a different device population"
        );
        for (dev, img) in self.devices.iter_mut().zip(&state.devices) {
            dev.restore_state(img);
        }
        self.transactions = state.transactions;
    }

    /// Merges per-shard bus states into one canonical image: each
    /// device merges its own per-shard images in shard order
    /// ([`SocPeripheral::merge_state`]), and the transaction counter
    /// accumulates every shard's delta over `base`. This is the
    /// epoch-barrier reduction of a sharded run; `self` only supplies
    /// the device types for dispatch (its state is not read).
    ///
    /// `base` must be the image every shard state descends from (the
    /// broadcast of the previous barrier) — the arbiter maintains this
    /// invariant; callers composing states by hand must too.
    ///
    /// # Panics
    ///
    /// Panics if any image was captured from a different device
    /// population (state is positional), and may panic (slice range /
    /// counter underflow) if `base` is *newer* than a shard image —
    /// e.g. a base captured after traffic a shard image predates —
    /// since suffix extraction and transaction deltas assume shard
    /// states extend the base.
    pub fn merge_states(&self, base: &SocBusState, shards: &[SocBusState]) -> SocBusState {
        assert_eq!(
            base.devices.len(),
            self.devices.len(),
            "merge base captured from a different device population"
        );
        for s in shards {
            assert_eq!(
                s.devices.len(),
                self.devices.len(),
                "shard state captured from a different device population"
            );
        }
        let devices = self
            .devices
            .iter()
            .enumerate()
            .map(|(i, dev)| {
                let imgs: Vec<&[u8]> = shards.iter().map(|s| s.devices[i].as_slice()).collect();
                dev.merge_state(&base.devices[i], &imgs)
            })
            .collect();
        let transactions = base.transactions
            + shards
                .iter()
                .map(|s| s.transactions - base.transactions)
                .sum::<u64>();
        SocBusState {
            devices,
            transactions,
        }
    }

    // --- device-granular accessors for the barrier exchange ------------

    /// Number of attached devices.
    fn device_count(&self) -> usize {
        self.devices.len()
    }

    /// True if device `i` opts into the barrier-delta exchange.
    fn device_supports_delta(&self, i: usize) -> bool {
        self.devices[i].barrier_delta().is_some()
    }

    fn device_delta(&self, i: usize) -> Vec<u8> {
        self.devices[i]
            .barrier_delta()
            .expect("delta support checked against the same device population")
    }

    fn device_apply_barrier(&mut self, i: usize, merged: &[u8]) {
        self.devices[i].apply_barrier(merged);
    }

    fn device_state(&self, i: usize) -> Vec<u8> {
        self.devices[i].save_state()
    }

    fn device_restore(&mut self, i: usize, state: &[u8]) {
        self.devices[i].restore_state(state);
    }

    fn device_merge(&self, i: usize, base: &[u8], shards: &[&[u8]]) -> Vec<u8> {
        self.devices[i].merge_state(base, shards)
    }

    fn device_dirty(&self, i: usize) -> bool {
        self.devices[i].barrier_dirty()
    }

    fn device_mark_exchanged(&mut self, i: usize) {
        self.devices[i].mark_exchanged();
    }

    fn set_transactions(&mut self, transactions: u64) {
        self.transactions = transactions;
    }
}

// --- little-endian state (de)serialization helpers ----------------------

fn put_u32(out: &mut Vec<u8>, v: u32) {
    out.extend_from_slice(&v.to_le_bytes());
}

fn put_u64(out: &mut Vec<u8>, v: u64) {
    out.extend_from_slice(&v.to_le_bytes());
}

fn get_u32(bytes: &[u8], at: usize) -> u32 {
    u32::from_le_bytes(bytes[at..at + 4].try_into().expect("u32 field"))
}

fn get_u64(bytes: &[u8], at: usize) -> u64 {
    u64::from_le_bytes(bytes[at..at + 8].try_into().expect("u64 field"))
}

/// A free-running timer clocked by generated SoC cycles.
///
/// Register map (offsets from base): `0x0` current count (read),
/// `0x4` compare value (read/write), `0x8` status — 1 once the count has
/// reached the compare value (read), `0xc` epoch reset (write).
#[derive(Debug)]
pub struct Timer {
    base: u32,
    epoch: u64,
    compare: u32,
    /// Reconfigured since the last barrier (not part of the state
    /// image — barrier bookkeeping, not device state).
    dirty: bool,
}

impl Timer {
    /// A timer at `base`.
    pub fn new(base: u32) -> Self {
        Timer {
            base,
            epoch: 0,
            compare: u32::MAX,
            dirty: false,
        }
    }
}

impl SocPeripheral for Timer {
    fn range(&self) -> (u32, u32) {
        (self.base, self.base + 0x10)
    }

    fn read(&mut self, soc_cycle: u64, addr: u32, _size: u32) -> u32 {
        let count = soc_cycle.saturating_sub(self.epoch);
        match addr - self.base {
            0x0 => count as u32,
            0x4 => self.compare,
            0x8 => (count >= self.compare as u64) as u32,
            _ => 0,
        }
    }

    fn write(&mut self, soc_cycle: u64, addr: u32, _size: u32, value: u32) {
        match addr - self.base {
            0x4 => {
                self.compare = value;
                self.dirty = true;
            }
            0xc => {
                self.epoch = soc_cycle;
                self.dirty = true;
            }
            _ => {}
        }
    }

    fn save_state(&self) -> Vec<u8> {
        let mut out = Vec::with_capacity(12);
        put_u64(&mut out, self.epoch);
        put_u32(&mut out, self.compare);
        out
    }

    fn restore_state(&mut self, state: &[u8]) {
        self.epoch = get_u64(state, 0);
        self.compare = get_u32(state, 8);
        // Conservative: the restored state may diverge from the
        // arbiter's canonical image, so the next barrier must look.
        self.dirty = true;
    }

    fn barrier_dirty(&self) -> bool {
        self.dirty
    }

    fn mark_exchanged(&mut self) {
        self.dirty = false;
    }
}

/// A transmit-only UART that logs bytes with their SoC-cycle timestamps.
///
/// Register map: `0x0` data (write to transmit), `0x4` status (reads 1 —
/// always ready).
///
/// The log is append-only, so in a sharded run the UART opts into the
/// barrier-delta exchange: each epoch barrier moves only the bytes
/// transmitted *during that epoch* (`exchanged` marks the canonical
/// prefix), keeping barrier cost independent of how long the run — and
/// the accumulated log — has grown.
#[derive(Debug, Default)]
pub struct Uart {
    base: u32,
    log: Vec<(u64, u8)>,
    /// Entries already reconciled through a barrier (the canonical
    /// prefix length). Part of the saved state, so snapshot restores
    /// re-seat the delta mark along with the log.
    exchanged: usize,
}

impl Uart {
    /// A UART at `base`.
    pub fn new(base: u32) -> Self {
        Uart {
            base,
            log: Vec::new(),
            exchanged: 0,
        }
    }

    /// Bytes transmitted so far.
    pub fn transmitted(&self) -> &[(u64, u8)] {
        &self.log
    }

    fn encode_entries(entries: &[(u64, u8)], out: &mut Vec<u8>) {
        for &(ts, byte) in entries {
            put_u64(out, ts);
            out.push(byte);
        }
    }

    fn decode_entries(bytes: &[u8]) -> impl Iterator<Item = (u64, u8)> + '_ {
        bytes.chunks_exact(9).map(|c| (get_u64(c, 0), c[8]))
    }
}

impl SocPeripheral for Uart {
    fn range(&self) -> (u32, u32) {
        (self.base, self.base + 0x100)
    }

    fn transmit_log(&self) -> Vec<(u64, u8)> {
        self.log.clone()
    }

    fn read(&mut self, _soc_cycle: u64, addr: u32, _size: u32) -> u32 {
        match addr - self.base {
            0x4 => 1,
            _ => 0,
        }
    }

    fn write(&mut self, soc_cycle: u64, addr: u32, _size: u32, value: u32) {
        if addr - self.base == 0 {
            self.log.push((soc_cycle, value as u8));
        }
    }

    /// State image: an 8-byte exchanged-prefix header, then the log
    /// entries (9 bytes each).
    fn save_state(&self) -> Vec<u8> {
        let mut out = Vec::with_capacity(8 + 9 * self.log.len());
        put_u64(&mut out, self.exchanged as u64);
        Self::encode_entries(&self.log, &mut out);
        out
    }

    fn restore_state(&mut self, state: &[u8]) {
        self.exchanged = get_u64(state, 0) as usize;
        self.log = Self::decode_entries(&state[8..]).collect();
    }

    /// The log is append-only within an epoch, so every shard image is
    /// the canonical prefix plus that shard's new bytes; the merge
    /// concatenates the suffixes in shard order. (Full-state fallback —
    /// the arbiter normally reconciles the UART through the O(epoch)
    /// barrier-delta path instead.)
    fn merge_state(&self, base: &[u8], shards: &[&[u8]]) -> Vec<u8> {
        let mut out = base.to_vec();
        for img in shards {
            out.extend_from_slice(&img[base.len()..]);
        }
        // The merged image is canonical through its full length.
        let entries = (out.len() - 8) / 9;
        out[..8].copy_from_slice(&(entries as u64).to_le_bytes());
        out
    }

    /// O(epoch) barrier exchange: only the entries past the canonical
    /// prefix travel.
    fn barrier_delta(&self) -> Option<Vec<u8>> {
        let mut out = Vec::with_capacity(9 * (self.log.len() - self.exchanged));
        Self::encode_entries(&self.log[self.exchanged..], &mut out);
        Some(out)
    }

    fn apply_barrier(&mut self, merged: &[u8]) {
        self.log.truncate(self.exchanged);
        self.log.extend(Self::decode_entries(merged));
        self.exchanged = self.log.len();
    }

    /// Dirty exactly when bytes sit past the exchanged prefix — no
    /// separate flag to maintain.
    fn barrier_dirty(&self) -> bool {
        self.log.len() > self.exchanged
    }
}

/// A scratch RAM window on the SoC bus (shared mailbox / DMA-style
/// buffer). Byte and halfword accesses honor their byte lanes.
///
/// The RAM keeps a *dirty-word journal*: every word address written
/// since the last barrier. The journal makes the epoch barrier
/// O(traffic) — [`SocPeripheral::barrier_delta`] ships only the
/// journaled `(addr, word)` pairs, and the canonical merge applies the
/// concatenated per-shard journals in shard order (on a conflict the
/// highest-numbered *writer* wins — a fixed, schedule-independent
/// tie-break), instead of diffing and broadcasting the full contents
/// every epoch however large the RAM has grown.
#[derive(Debug, Default)]
pub struct ScratchRam {
    base: u32,
    size: u32,
    words: HashMap<u32, u32>,
    /// Word addresses written since the last barrier, kept sorted so
    /// delta images are deterministic. Part of the saved state: a
    /// mid-epoch snapshot must resume with its pending writes still
    /// scheduled for the next barrier.
    journal: std::collections::BTreeSet<u32>,
}

impl ScratchRam {
    /// A RAM of `size` bytes at `base`.
    pub fn new(base: u32, size: u32) -> Self {
        ScratchRam {
            base,
            size,
            words: HashMap::new(),
            journal: std::collections::BTreeSet::new(),
        }
    }

    /// State image: an 8-byte journal-length header, the journaled
    /// addresses (ascending), then every `(addr, word)` pair sorted by
    /// address.
    fn encode(words: &HashMap<u32, u32>, journal: &std::collections::BTreeSet<u32>) -> Vec<u8> {
        let mut entries: Vec<(u32, u32)> = words.iter().map(|(&a, &w)| (a, w)).collect();
        entries.sort_unstable();
        let mut out = Vec::with_capacity(8 + 4 * journal.len() + 8 * entries.len());
        put_u64(&mut out, journal.len() as u64);
        for &addr in journal {
            put_u32(&mut out, addr);
        }
        for (addr, word) in entries {
            put_u32(&mut out, addr);
            put_u32(&mut out, word);
        }
        out
    }

    fn decode(state: &[u8]) -> (HashMap<u32, u32>, std::collections::BTreeSet<u32>) {
        let njournal = get_u64(state, 0) as usize;
        let journal = state[8..8 + 4 * njournal]
            .chunks_exact(4)
            .map(|c| get_u32(c, 0))
            .collect();
        let words = state[8 + 4 * njournal..]
            .chunks_exact(8)
            .map(|c| (get_u32(c, 0), get_u32(c, 4)))
            .collect();
        (words, journal)
    }
}

impl SocPeripheral for ScratchRam {
    fn range(&self) -> (u32, u32) {
        (self.base, self.base + self.size)
    }

    fn read(&mut self, _soc_cycle: u64, addr: u32, size: u32) -> u32 {
        let word = *self.words.get(&(addr & !3)).unwrap_or(&0);
        match size {
            1 => (word >> ((addr & 3) * 8)) & 0xff,
            2 => (word >> ((addr & 2) * 8)) & 0xffff,
            _ => word,
        }
    }

    fn write(&mut self, _soc_cycle: u64, addr: u32, size: u32, value: u32) {
        let key = addr & !3;
        let old = *self.words.get(&key).unwrap_or(&0);
        let new = match size {
            1 => {
                let sh = (addr & 3) * 8;
                (old & !(0xff << sh)) | ((value & 0xff) << sh)
            }
            2 => {
                let sh = (addr & 2) * 8;
                (old & !(0xffff << sh)) | ((value & 0xffff) << sh)
            }
            _ => value,
        };
        self.words.insert(key, new);
        self.journal.insert(key);
    }

    fn save_state(&self) -> Vec<u8> {
        // Sorted by address: HashMap iteration order must not leak into
        // the snapshot image (replays compare state bytes for equality).
        Self::encode(&self.words, &self.journal)
    }

    fn restore_state(&mut self, state: &[u8]) {
        let (words, journal) = Self::decode(state);
        self.words = words;
        self.journal = journal;
    }

    /// Word-granular merge: every journaled write is applied in shard
    /// order (on a conflict the highest-numbered writer wins — a fixed,
    /// schedule-independent tie-break). The merged journal is the union
    /// of the inputs' journals, so merging unchanged shards returns
    /// `base` bit-identically. (Full-state fallback — the arbiter
    /// normally reconciles the RAM through the O(traffic)
    /// barrier-delta path instead, with the same write-wins rule.)
    fn merge_state(&self, base: &[u8], shards: &[&[u8]]) -> Vec<u8> {
        let (mut merged, mut journal) = Self::decode(base);
        for img in shards {
            let (words, shard_journal) = Self::decode(img);
            for &addr in &shard_journal {
                merged.insert(addr, words.get(&addr).copied().unwrap_or(0));
            }
            journal.extend(shard_journal);
        }
        Self::encode(&merged, &journal)
    }

    /// O(traffic) barrier exchange: only the journaled `(addr, word)`
    /// pairs travel.
    fn barrier_delta(&self) -> Option<Vec<u8>> {
        let mut out = Vec::with_capacity(8 * self.journal.len());
        for &addr in &self.journal {
            put_u32(&mut out, addr);
            put_u32(&mut out, self.words.get(&addr).copied().unwrap_or(0));
        }
        Some(out)
    }

    fn apply_barrier(&mut self, merged: &[u8]) {
        for c in merged.chunks_exact(8) {
            self.words.insert(get_u32(c, 0), get_u32(c, 4));
        }
        self.journal.clear();
    }

    fn barrier_dirty(&self) -> bool {
        !self.journal.is_empty()
    }
}

/// The per-shard NoC doorbell endpoint: a core-id register and one
/// mailbox per peer core, giving SPMD guests an inter-core signaling
/// path that does not round-trip through the merged scratch RAM.
///
/// Register map (offsets from base):
///
/// * `0x000` — this core's id (read-only; replaces the `%d15` seeding
///   convention, which is kept for compatibility)
/// * `0x004` — the shard count (read-only)
/// * `0x400 + 4*t` — doorbell *send* window: writing a word rings core
///   `t`'s doorbell with that value (writes to cores ≥ the shard count
///   are dropped)
/// * `0x800 + 4*s` — doorbell *inbox* window: the last value core `s`
///   sent to this core, `0` until the first delivery
///
/// Delivery is *epoch-synchronous*: sends append to a private outbox
/// journal and are delivered into the targets' inboxes at the next
/// epoch barrier, in shard order (the [`ShardArbiter`]'s delta
/// contract) — so delivery has a deterministic one-epoch latency and
/// runs are bit-identical whatever host schedule executed the epoch.
/// On a single-core session the device still answers the id/count
/// registers, but with no barrier there is no delivery.
///
/// Unlike every other peripheral the CoreLink is *not* identical
/// across shards — each shard's inbox is private, which is exactly why
/// it reconciles through the per-device
/// [`SocPeripheral::apply_barrier`] (each endpoint filters the merged
/// send journal by its own id) rather than a broadcast canonical
/// image. The id and shard count are construction identity, not state:
/// they are excluded from the state image so resets and snapshot
/// restores cannot clobber which core a bus belongs to.
#[derive(Debug)]
pub struct CoreLink {
    base: u32,
    /// This endpoint's core id; `u32::MAX` marks an arbiter mirror,
    /// which observes the exchange but never receives a delivery.
    core_id: u32,
    ncores: u32,
    /// Last delivered value per source core.
    inbox: Vec<u32>,
    /// `(src, target, value)` sends since the last barrier.
    outbox: Vec<(u32, u32, u32)>,
}

/// Byte size of the [`CoreLink`] MMIO window (fixed — covers 256
/// cores, the fabric's design ceiling).
pub const CORE_LINK_WINDOW: u32 = 0xc00;

impl CoreLink {
    /// The endpoint of core `core_id` in a fabric of `ncores`.
    pub fn new(base: u32, core_id: u32, ncores: u32) -> Self {
        CoreLink {
            base,
            core_id,
            ncores,
            inbox: vec![0; ncores as usize],
            outbox: Vec::new(),
        }
    }

    /// An arbiter-mirror endpoint: participates in the barrier exchange
    /// (so device populations stay positional) but is no core, receives
    /// nothing, and keeps an all-zero inbox.
    pub fn mirror(base: u32, ncores: u32) -> Self {
        Self::new(base, u32::MAX, ncores)
    }
}

impl SocPeripheral for CoreLink {
    fn range(&self) -> (u32, u32) {
        (self.base, self.base + CORE_LINK_WINDOW)
    }

    fn read(&mut self, _soc_cycle: u64, addr: u32, _size: u32) -> u32 {
        match addr - self.base {
            0x0 => self.core_id,
            0x4 => self.ncores,
            o if (0x800..CORE_LINK_WINDOW).contains(&o) => {
                let src = ((o - 0x800) / 4) as usize;
                self.inbox.get(src).copied().unwrap_or(0)
            }
            _ => 0,
        }
    }

    fn write(&mut self, _soc_cycle: u64, addr: u32, _size: u32, value: u32) {
        let o = addr - self.base;
        if (0x400..0x800).contains(&o) {
            let target = (o - 0x400) / 4;
            if target < self.ncores {
                self.outbox.push((self.core_id, target, value));
            }
        }
    }

    /// State image: an 8-byte inbox-length header, the inbox words,
    /// an 8-byte outbox-length header, then the `(src, target, value)`
    /// send triples. The core id and shard count are construction
    /// identity and deliberately not part of the image.
    fn save_state(&self) -> Vec<u8> {
        let mut out = Vec::with_capacity(16 + 4 * self.inbox.len() + 12 * self.outbox.len());
        put_u64(&mut out, self.inbox.len() as u64);
        for &w in &self.inbox {
            put_u32(&mut out, w);
        }
        put_u64(&mut out, self.outbox.len() as u64);
        for &(src, target, value) in &self.outbox {
            put_u32(&mut out, src);
            put_u32(&mut out, target);
            put_u32(&mut out, value);
        }
        out
    }

    fn restore_state(&mut self, state: &[u8]) {
        let ninbox = get_u64(state, 0) as usize;
        self.inbox = state[8..8 + 4 * ninbox]
            .chunks_exact(4)
            .map(|c| get_u32(c, 0))
            .collect();
        let at = 8 + 4 * ninbox;
        let noutbox = get_u64(state, at) as usize;
        self.outbox = state[at + 8..at + 8 + 12 * noutbox]
            .chunks_exact(12)
            .map(|c| (get_u32(c, 0), get_u32(c, 4), get_u32(c, 8)))
            .collect();
    }

    /// O(traffic) barrier exchange: only the sends of the epoch travel.
    fn barrier_delta(&self) -> Option<Vec<u8>> {
        let mut out = Vec::with_capacity(12 * self.outbox.len());
        for &(src, target, value) in &self.outbox {
            put_u32(&mut out, src);
            put_u32(&mut out, target);
            put_u32(&mut out, value);
        }
        Some(out)
    }

    /// Delivery: every send of the epoch, in shard order; each endpoint
    /// keeps only the triples addressed to its own id (on two sends
    /// from one source, the later one in shard-merge order wins).
    fn apply_barrier(&mut self, merged: &[u8]) {
        for c in merged.chunks_exact(12) {
            let (src, target, value) = (get_u32(c, 0), get_u32(c, 4), get_u32(c, 8));
            if target == self.core_id {
                if let Some(slot) = self.inbox.get_mut(src as usize) {
                    *slot = value;
                }
            }
        }
        self.outbox.clear();
    }

    fn barrier_dirty(&self) -> bool {
        !self.outbox.is_empty()
    }
}

/// A cloneable handle to one [`SocBus`] — the currency for sharing a
/// device population between execution vehicles: the golden model (via
/// [`GoldenBridge`]) and translated platforms route into the same
/// peripherals through clones of this handle. The handle is
/// `Send + Sync` (shards of a parallel session carry their private
/// buses onto worker threads); accesses serialize through an
/// uncontended mutex — within an epoch exactly one shard owns every
/// handle to its bus, so the lock never blocks on the hot path.
///
/// Sharded sessions deliberately do *not* alias one bus across shards:
/// each shard gets a private clone of the device population, and the
/// [`ShardArbiter`] reconciles the states at epoch barriers. Handing
/// the same handle to two concurrently running shards would make runs
/// schedule-dependent; [`ShardArbiter::new`] rejects aliased buses.
#[derive(Clone)]
pub struct SharedSocBus(Arc<Mutex<SocBus>>);

impl std::fmt::Debug for SharedSocBus {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_tuple("SharedSocBus")
            .field(&*self.0.lock().expect("bus lock"))
            .finish()
    }
}

impl SharedSocBus {
    /// Wraps a bus into a shareable handle.
    pub fn new(bus: SocBus) -> Self {
        SharedSocBus(Arc::new(Mutex::new(bus)))
    }

    fn lock(&self) -> std::sync::MutexGuard<'_, SocBus> {
        self.0.lock().expect("SoC bus lock poisoned")
    }

    /// Attaches a peripheral. Attach the full device population before
    /// capturing any [`SocBusState`] — state is positional.
    pub fn attach(&self, dev: Box<dyn SocPeripheral>) {
        self.lock().attach(dev);
    }

    /// Routes a read at SoC time `soc_cycle`.
    pub fn read(&self, soc_cycle: u64, addr: u32, size: u32) -> u32 {
        self.lock().read(soc_cycle, addr, size)
    }

    /// Routes a write at SoC time `soc_cycle`.
    pub fn write(&self, soc_cycle: u64, addr: u32, size: u32, value: u32) {
        self.lock().write(soc_cycle, addr, size, value);
    }

    /// Concatenated transmit logs of all logging peripherals.
    pub fn uart_log(&self) -> Vec<(u64, u8)> {
        self.lock().uart_log()
    }

    /// Transactions served so far.
    pub fn transactions(&self) -> u64 {
        self.lock().transactions()
    }

    /// Captures the bus state (see [`SocBus::save_state`]).
    pub fn save_state(&self) -> SocBusState {
        self.lock().save_state()
    }

    /// Restores a captured bus state (see [`SocBus::restore_state`]).
    ///
    /// # Panics
    ///
    /// Panics on a device-population mismatch.
    pub fn restore_state(&self, state: &SocBusState) {
        self.lock().restore_state(state);
    }

    /// True if `other` is a handle to the same underlying bus.
    pub fn same_bus(&self, other: &SharedSocBus) -> bool {
        Arc::ptr_eq(&self.0, &other.0)
    }

    // --- device-granular barrier plumbing (arbiter-internal) -----------

    fn device_delta(&self, i: usize) -> Vec<u8> {
        self.lock().device_delta(i)
    }

    fn device_apply_barrier(&self, i: usize, merged: &[u8]) {
        self.lock().device_apply_barrier(i, merged);
    }

    fn device_state(&self, i: usize) -> Vec<u8> {
        self.lock().device_state(i)
    }

    fn device_restore(&self, i: usize, state: &[u8]) {
        self.lock().device_restore(i, state);
    }

    fn device_dirty(&self, i: usize) -> bool {
        self.lock().device_dirty(i)
    }

    fn device_mark_exchanged(&self, i: usize) {
        self.lock().device_mark_exchanged(i);
    }

    fn set_transactions(&self, transactions: u64) {
        self.lock().set_transactions(transactions);
    }
}

/// The epoch-barrier arbiter of a sharded run. Every shard owns a
/// *private* [`SharedSocBus`] with an identical device population;
/// within an epoch each shard talks only to its own devices (so shards
/// can run concurrently on worker threads), and at the barrier the
/// arbiter [`exchanges`](ShardArbiter::exchange) the per-shard
/// [`SocBusState`] images: it merges them in fixed shard order over
/// the canonical image of the previous boundary
/// ([`SocBus::merge_states`]) and broadcasts the result back into
/// every shard's bus. The merge is a pure function of the states, so a
/// run's device behaviour is identical whatever host schedule executed
/// the epoch — which is exactly what makes the sequential and
/// thread-parallel shard schedulers bit-identical.
///
/// The arbiter holds the canonical state in a private *mirror* bus (a
/// device population never attached to any engine); mid-epoch
/// aggregate views ([`ShardArbiter::transactions`],
/// [`ShardArbiter::uart_log`]) combine the mirror with the per-shard
/// deltas accumulated since the last barrier.
#[derive(Debug)]
pub struct ShardArbiter {
    /// Canonical device state as of the last barrier.
    mirror: SocBus,
    /// Per-shard private buses, in shard order.
    buses: Vec<SharedSocBus>,
    /// Epoch boundaries crossed.
    epochs: u64,
}

impl ShardArbiter {
    /// An arbiter over per-shard buses (in shard order), with `mirror`
    /// holding the canonical device population. All buses and the
    /// mirror must carry the same device population in the same state.
    ///
    /// # Panics
    ///
    /// Panics if two shard slots alias the same underlying bus —
    /// aliasing would let one shard's mid-epoch traffic leak into
    /// another's, making runs schedule-dependent — or if a shard bus
    /// carries a different device count than the mirror (state
    /// exchange is positional, so the populations must match).
    pub fn new(mirror: SocBus, buses: Vec<SharedSocBus>) -> Self {
        for (i, a) in buses.iter().enumerate() {
            assert_eq!(
                a.lock().device_count(),
                mirror.device_count(),
                "shard bus {i} carries a different device population than the mirror"
            );
            for b in &buses[i + 1..] {
                assert!(
                    !a.same_bus(b),
                    "shard buses must be private: slots may not alias one SocBus"
                );
            }
        }
        ShardArbiter {
            mirror,
            buses,
            epochs: 0,
        }
    }

    /// Shard `i`'s private bus handle.
    pub fn bus(&self, i: usize) -> SharedSocBus {
        self.buses[i].clone()
    }

    /// Number of shard buses.
    pub fn shard_count(&self) -> usize {
        self.buses.len()
    }

    /// Runs the epoch barrier: reconciles every device across the
    /// shard buses and the canonical mirror, then returns the number
    /// of bus transactions served during the epoch that just ended.
    ///
    /// Devices are exchanged one of two ways:
    ///
    /// * **delta path** ([`SocPeripheral::barrier_delta`]) — append-only
    ///   devices (the [`Uart`]) ship only the suffix logged since the
    ///   previous barrier; the canonical suffix is the concatenation in
    ///   shard order, applied everywhere. Cost is O(epoch traffic),
    ///   independent of accumulated history — a long run's barrier does
    ///   not slow down as the log grows.
    /// * **full-state path** — everything else goes through
    ///   `save_state` → [`SocPeripheral::merge_state`] (in shard order,
    ///   over the canonical base) → `restore_state`, as before.
    ///
    /// Both paths produce the same canonical image the all-full-state
    /// exchange produced; the delta path is purely a cost change.
    ///
    /// A device *no* shard reports dirty ([`SocPeripheral::barrier_dirty`])
    /// is skipped outright: its merge would return the canonical base
    /// bit-identically, so neither capture, merge, nor broadcast runs —
    /// an idle device costs the barrier one flag read per shard.
    pub fn exchange(&mut self) -> u64 {
        let base_transactions = self.mirror.transactions();
        let served: u64 = self
            .buses
            .iter()
            .map(|b| b.transactions() - base_transactions)
            .sum();
        for i in 0..self.mirror.device_count() {
            if !self.buses.iter().any(|b| b.device_dirty(i)) {
                continue;
            }
            if self.mirror.device_supports_delta(i) {
                // O(epoch): move only the per-epoch suffixes, in shard
                // order (the delta-merge contract).
                let mut merged = Vec::new();
                for bus in &self.buses {
                    merged.extend_from_slice(&bus.device_delta(i));
                }
                self.mirror.device_apply_barrier(i, &merged);
                for bus in &self.buses {
                    bus.device_apply_barrier(i, &merged);
                }
            } else {
                let base = self.mirror.device_state(i);
                let imgs: Vec<Vec<u8>> = self.buses.iter().map(|b| b.device_state(i)).collect();
                let refs: Vec<&[u8]> = imgs.iter().map(std::vec::Vec::as_slice).collect();
                let merged = self.mirror.device_merge(i, &base, &refs);
                self.mirror.device_restore(i, &merged);
                for bus in &self.buses {
                    bus.device_restore(i, &merged);
                }
                // `restore_state` conservatively re-marks devices
                // dirty; the broadcast IS the reconciliation, so clear
                // the marks (after the restores, or they would stick).
                self.mirror.device_mark_exchanged(i);
                for bus in &self.buses {
                    bus.device_mark_exchanged(i);
                }
            }
        }
        self.mirror.set_transactions(base_transactions + served);
        for bus in &self.buses {
            bus.set_transactions(base_transactions + served);
        }
        self.epochs += 1;
        served
    }

    /// Epoch boundaries crossed so far.
    pub fn epochs(&self) -> u64 {
        self.epochs
    }

    /// The canonical device-state image of the last epoch boundary —
    /// what a session snapshot, a shard handed to another host, or an
    /// external checkpoint carries.
    pub fn canonical_state(&self) -> SocBusState {
        self.mirror.save_state()
    }

    /// Total bus transactions served: the canonical count plus every
    /// shard's delta since the last barrier.
    pub fn transactions(&self) -> u64 {
        let canonical = self.mirror.transactions();
        canonical
            + self
                .buses
                .iter()
                .map(|b| b.transactions() - canonical)
                .sum::<u64>()
    }

    /// The merged transmit log: the canonical log plus each shard's
    /// mid-epoch suffix, in shard order (logs are append-only within an
    /// epoch, so every shard log extends the canonical prefix).
    pub fn uart_log(&self) -> Vec<(u64, u8)> {
        let mut out = self.mirror.uart_log();
        let canonical_len = out.len();
        for bus in &self.buses {
            let log = bus.uart_log();
            out.extend_from_slice(&log[canonical_len..]);
        }
        out
    }

    /// Resets the whole device fabric to `initial`: the mirror and
    /// every shard bus are restored and the epoch counter cleared.
    pub fn reset(&mut self, initial: &SocBusState) {
        self.mirror.restore_state(initial);
        for bus in &self.buses {
            bus.restore_state(initial);
        }
        self.epochs = 0;
    }

    /// Restores the canonical state and epoch counter from a snapshot —
    /// the restore-side pair of [`ShardArbiter::exchange`]. The
    /// per-shard buses are restored by their owners (each shard's
    /// snapshot carries its own possibly mid-epoch device image); this
    /// only re-seats the barrier's merge base.
    pub fn restore_canonical(&mut self, state: &SocBusState, epochs: u64) {
        self.mirror.restore_state(state);
        self.epochs = epochs;
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bus_routes_by_range() {
        let mut bus = SocBus::new();
        bus.attach(Box::new(Timer::new(0x1000)));
        bus.attach(Box::new(ScratchRam::new(0x2000, 0x100)));
        bus.write(0, 0x2004, 4, 0xabcd);
        assert_eq!(bus.read(0, 0x2004, 4), 0xabcd);
        assert_eq!(bus.read(5, 0x1000, 4), 5, "timer count");
        assert_eq!(bus.read(0, 0x9999, 4), 0, "open bus reads zero");
        assert_eq!(
            bus.transactions(),
            3,
            "open-bus accesses are not served and not counted"
        );
    }

    #[test]
    fn timer_compare_and_reset() {
        let mut t = Timer::new(0);
        t.write(0, 0x4, 4, 100); // compare = 100
        assert_eq!(t.read(50, 0x8, 4), 0);
        assert_eq!(t.read(100, 0x8, 4), 1);
        t.write(150, 0xc, 4, 0); // reset epoch at soc time 150
        assert_eq!(t.read(170, 0x0, 4), 20);
        assert_eq!(t.read(170, 0x8, 4), 0);
    }

    #[test]
    fn uart_logs_bytes_with_time() {
        let mut u = Uart::new(0x100);
        assert_eq!(u.read(0, 0x104, 4), 1, "always ready");
        u.write(10, 0x100, 4, b'A' as u32);
        u.write(20, 0x100, 4, b'B' as u32);
        assert_eq!(u.transmitted(), &[(10, b'A'), (20, b'B')]);
    }

    #[test]
    fn scratch_ram_round_trips() {
        let mut r = ScratchRam::new(0, 64);
        r.write(0, 16, 4, 42);
        assert_eq!(r.read(0, 16, 4), 42);
        assert_eq!(r.read(0, 20, 4), 0);
    }

    #[test]
    fn scratch_ram_honors_byte_lanes() {
        let mut r = ScratchRam::new(0, 64);
        r.write(0, 8, 4, 0xaabb_ccdd);
        // Byte store replaces one lane, not the whole word.
        r.write(0, 9, 1, 0x11);
        assert_eq!(r.read(0, 8, 4), 0xaabb_11dd);
        // Halfword store replaces the upper lane pair.
        r.write(0, 10, 2, 0x2233);
        assert_eq!(r.read(0, 8, 4), 0x2233_11dd);
        // Sub-word reads extract their lanes, zero-extended.
        assert_eq!(r.read(0, 9, 1), 0x11);
        assert_eq!(r.read(0, 11, 1), 0x22);
        assert_eq!(r.read(0, 8, 2), 0x11dd);
        assert_eq!(r.read(0, 10, 2), 0x2233);
    }

    #[test]
    fn timer_state_round_trips() {
        let mut t = Timer::new(0);
        t.write(0, 0x4, 4, 77); // compare
        t.write(123, 0xc, 4, 0); // epoch = 123
        let img = t.save_state();
        let mut fresh = Timer::new(0);
        fresh.restore_state(&img);
        assert_eq!(fresh.read(200, 0x0, 4), 77, "epoch restored");
        assert_eq!(fresh.read(200, 0x4, 4), 77, "compare restored");
        assert_eq!(fresh.save_state(), img);
    }

    #[test]
    fn uart_state_round_trips() {
        let mut u = Uart::new(0);
        u.write(10, 0, 4, b'X' as u32);
        u.write(900, 0, 4, b'Y' as u32);
        let img = u.save_state();
        let mut fresh = Uart::new(0);
        fresh.restore_state(&img);
        assert_eq!(fresh.transmitted(), u.transmitted());
        // Restoring an earlier image truncates later transmissions —
        // the double-log fix.
        u.write(1000, 0, 4, b'Z' as u32);
        u.restore_state(&img);
        assert_eq!(u.transmitted().len(), 2);
    }

    #[test]
    fn scratch_ram_state_is_deterministic_and_round_trips() {
        let mut r = ScratchRam::new(0, 0x100);
        for i in 0..16u32 {
            r.write(0, (16 - i) * 4, 4, i * 3 + 1);
        }
        let img = r.save_state();
        let mut r2 = ScratchRam::new(0, 0x100);
        for i in (0..16u32).rev() {
            r2.write(0, (16 - i) * 4, 4, i * 3 + 1);
        }
        assert_eq!(
            r2.save_state(),
            img,
            "state image must not depend on insertion order"
        );
        let mut fresh = ScratchRam::new(0, 0x100);
        fresh.restore_state(&img);
        assert_eq!(fresh.read(0, 4 * 4, 4), r.read(0, 4 * 4, 4));
        assert_eq!(fresh.save_state(), img);
    }

    #[test]
    fn bus_state_round_trips_all_devices() {
        let mut bus = SocBus::new();
        bus.attach(Box::new(Timer::new(0x0)));
        bus.attach(Box::new(Uart::new(0x100)));
        bus.attach(Box::new(ScratchRam::new(0x200, 0x100)));
        bus.write(5, 0x200, 4, 99);
        bus.write(7, 0x100, 4, b'!' as u32);
        bus.write(9, 0xc, 4, 0); // timer epoch = 9
        let img = bus.save_state();

        bus.write(20, 0x100, 4, b'?' as u32);
        bus.write(20, 0x204, 4, 1);
        assert_eq!(bus.uart_log().len(), 2);

        bus.restore_state(&img);
        assert_eq!(bus.uart_log(), vec![(7, b'!')]);
        assert_eq!(bus.read(10, 0x204, 4), 0, "later write rolled back");
        assert_eq!(bus.read(10, 0x0, 4), 1, "timer epoch restored (10 - 9)");
        assert_eq!(img, {
            // transactions counter restored too (the reads above advanced it)
            let mut b2 = SocBus::new();
            b2.attach(Box::new(Timer::new(0x0)));
            b2.attach(Box::new(Uart::new(0x100)));
            b2.attach(Box::new(ScratchRam::new(0x200, 0x100)));
            b2.restore_state(&img);
            b2.save_state()
        });
    }

    #[test]
    #[should_panic(expected = "different device population")]
    fn bus_state_rejects_mismatched_population() {
        let mut a = SocBus::new();
        a.attach(Box::new(Timer::new(0)));
        let img = a.save_state();
        let mut b = SocBus::new();
        b.attach(Box::new(Timer::new(0)));
        b.attach(Box::new(Uart::new(0x100)));
        b.restore_state(&img);
    }

    #[test]
    fn shared_bus_serves_multiple_handles() {
        let bus = SharedSocBus::new(SocBus::new());
        bus.attach(Box::new(Uart::new(0x100)));
        let other = bus.clone();
        bus.write(1, 0x100, 4, b'a' as u32);
        other.write(2, 0x100, 4, b'b' as u32);
        assert_eq!(bus.uart_log(), vec![(1, b'a'), (2, b'b')]);
        assert!(bus.same_bus(&other));
        assert!(!bus.same_bus(&SharedSocBus::new(SocBus::new())));
    }

    fn arbiter_population() -> SocBus {
        let mut bus = SocBus::new();
        bus.attach(Box::new(Timer::new(0x0)));
        bus.attach(Box::new(Uart::new(0x100)));
        bus.attach(Box::new(ScratchRam::new(0x200, 0x100)));
        bus
    }

    #[test]
    fn arbiter_exchange_merges_and_broadcasts() {
        let shard0 = SharedSocBus::new(arbiter_population());
        let shard1 = SharedSocBus::new(arbiter_population());
        let initial = shard0.save_state();
        let mut arb = ShardArbiter::new(arbiter_population(), vec![shard0.clone(), shard1.clone()]);
        assert_eq!(arb.epochs(), 0);
        assert_eq!(arb.canonical_state(), initial);

        // Epoch 1: shard 0 fills the mailbox, shard 1 transmits.
        shard0.write(5, 0x200, 4, 99);
        shard1.write(7, 0x100, 4, b'b' as u32);
        assert_eq!(arb.transactions(), 2, "mid-epoch deltas are aggregated");
        assert_eq!(arb.uart_log(), vec![(7, b'b')]);
        assert_eq!(arb.exchange(), 2, "two transactions this epoch");
        assert_eq!(arb.epochs(), 1);
        assert_eq!(arb.canonical_state(), shard0.save_state());

        // Both shards now see the merged state.
        for bus in [&shard0, &shard1] {
            assert_eq!(bus.read(9, 0x200, 4), 99, "mailbox word broadcast");
            assert_eq!(bus.uart_log(), vec![(7, b'b')], "UART log broadcast");
        }

        // Idle epoch: nothing served (the reads above count, so take
        // the counter before and after a no-traffic exchange).
        let before = arb.exchange();
        assert_eq!(arb.exchange(), 0, "idle epoch after {before} reads");

        arb.reset(&initial);
        assert_eq!(arb.epochs(), 0);
        assert_eq!(arb.canonical_state(), initial);
        assert_eq!(shard1.save_state(), initial, "reset restores every bus");
    }

    #[test]
    fn arbiter_merge_is_shard_ordered_and_schedule_independent() {
        // Both shards write the same mailbox word in one epoch: the
        // higher-numbered shard wins, whatever order the writes landed.
        let shard0 = SharedSocBus::new(arbiter_population());
        let shard1 = SharedSocBus::new(arbiter_population());
        let mut arb = ShardArbiter::new(arbiter_population(), vec![shard0.clone(), shard1.clone()]);
        shard1.write(3, 0x204, 4, 0x1111); // "later" shard writes first
        shard0.write(4, 0x204, 4, 0x2222);
        shard0.write(4, 0x208, 4, 0x3333); // uncontended word survives
        arb.exchange();
        assert_eq!(shard0.read(9, 0x204, 4), 0x1111, "shard-order tie-break");
        assert_eq!(shard1.read(9, 0x208, 4), 0x3333);

        // UART suffixes concatenate in shard order regardless of
        // timestamps.
        shard1.write(10, 0x100, 4, b'B' as u32);
        shard0.write(20, 0x100, 4, b'A' as u32);
        arb.exchange();
        let bytes: Vec<u8> = arb.uart_log().iter().map(|&(_, b)| b).collect();
        assert_eq!(bytes, b"AB", "shard 0's byte merges first");
    }

    #[test]
    fn uart_barrier_delta_is_the_epoch_suffix_only() {
        let mut u = Uart::new(0);
        u.write(1, 0, 4, b'a' as u32);
        u.write(2, 0, 4, b'b' as u32);
        let d = u.barrier_delta().expect("uart supports deltas");
        assert_eq!(d.len(), 18, "two unexchanged entries");
        u.apply_barrier(&d);
        assert_eq!(
            u.barrier_delta().unwrap().len(),
            0,
            "after the barrier nothing is pending"
        );
        // Only traffic of the new epoch travels, however long the log.
        u.write(3, 0, 4, b'c' as u32);
        assert_eq!(u.barrier_delta().unwrap().len(), 9);
        assert_eq!(u.transmitted().len(), 3, "history intact");

        // The exchanged mark survives a save/restore round trip.
        let img = u.save_state();
        let mut fresh = Uart::new(0);
        fresh.restore_state(&img);
        assert_eq!(fresh.barrier_delta().unwrap().len(), 9);
        assert_eq!(fresh.transmitted(), u.transmitted());
    }

    #[test]
    fn delta_exchange_accumulates_canonically_over_many_epochs() {
        // Multi-epoch run: every epoch's bytes merge in shard order
        // behind the history, no byte is duplicated or dropped, and
        // the canonical image matches every shard's image at each
        // barrier — the behaviour the full-state exchange had, now at
        // O(epoch) cost.
        let shard0 = SharedSocBus::new(arbiter_population());
        let shard1 = SharedSocBus::new(arbiter_population());
        let mut arb = ShardArbiter::new(arbiter_population(), vec![shard0.clone(), shard1.clone()]);
        let mut expected: Vec<u8> = Vec::new();
        for epoch in 0..5u8 {
            let a = b'a' + 2 * epoch;
            let b = a + 1;
            shard1.write(10 + epoch as u64, 0x100, 4, b as u32);
            shard0.write(20 + epoch as u64, 0x100, 4, a as u32);
            expected.push(a); // shard order, whatever the write order
            expected.push(b);
            arb.exchange();
            let bytes: Vec<u8> = arb.uart_log().iter().map(|&(_, x)| x).collect();
            assert_eq!(bytes, expected, "epoch {epoch}: merged log");
            assert_eq!(
                arb.canonical_state(),
                shard0.save_state(),
                "epoch {epoch}: broadcast state"
            );
            assert_eq!(shard0.save_state(), shard1.save_state());
        }
    }

    #[test]
    #[should_panic(expected = "must be private")]
    fn arbiter_rejects_aliased_shard_buses() {
        let bus = SharedSocBus::new(arbiter_population());
        ShardArbiter::new(arbiter_population(), vec![bus.clone(), bus.clone()]);
    }

    #[test]
    fn scratch_ram_journal_is_the_epoch_traffic_only() {
        let mut r = ScratchRam::new(0, 0x100);
        r.write(0, 0x10, 4, 7);
        r.write(0, 0x20, 4, 9);
        let d = r.barrier_delta().expect("scratch ram supports deltas");
        assert_eq!(d.len(), 16, "two journaled words");
        r.apply_barrier(&d);
        assert!(!r.barrier_dirty(), "journal cleared at the barrier");
        assert_eq!(
            r.barrier_delta().unwrap().len(),
            0,
            "after the barrier nothing is pending"
        );
        // Only the epoch's writes travel, however full the RAM.
        r.write(0, 0x10, 4, 8);
        assert_eq!(r.barrier_delta().unwrap().len(), 8);
        assert_eq!(r.read(0, 0x20, 4), 9, "contents intact");

        // The journal survives a save/restore round trip (a mid-epoch
        // snapshot resumes with its writes still pending exchange).
        let img = r.save_state();
        let mut fresh = ScratchRam::new(0, 0x100);
        fresh.restore_state(&img);
        assert_eq!(fresh.barrier_delta(), r.barrier_delta());
        assert_eq!(fresh.save_state(), img);
    }

    #[test]
    fn timer_dirty_tracks_configuration_writes() {
        let mut t = Timer::new(0);
        assert!(!t.barrier_dirty(), "fresh timer is clean");
        assert_eq!(t.read(5, 0x0, 4), 5);
        assert!(!t.barrier_dirty(), "reads do not dirty");
        t.write(0, 0x4, 4, 100);
        assert!(t.barrier_dirty());
        t.mark_exchanged();
        assert!(!t.barrier_dirty());
        t.restore_state(&t.save_state());
        assert!(t.barrier_dirty(), "a restore is conservatively dirty");
    }

    /// A device whose capture calls are observable, for pinning the
    /// arbiter's clean-device skip.
    struct Probe {
        captures: Arc<std::sync::atomic::AtomicUsize>,
        dirty: Arc<std::sync::atomic::AtomicBool>,
    }

    impl SocPeripheral for Probe {
        fn range(&self) -> (u32, u32) {
            (0x9000, 0x9010)
        }
        fn read(&mut self, _c: u64, _a: u32, _s: u32) -> u32 {
            0
        }
        fn write(&mut self, _c: u64, _a: u32, _s: u32, _v: u32) {}
        fn save_state(&self) -> Vec<u8> {
            use std::sync::atomic::Ordering;
            self.captures.fetch_add(1, Ordering::Relaxed);
            Vec::new()
        }
        fn barrier_dirty(&self) -> bool {
            self.dirty.load(std::sync::atomic::Ordering::Relaxed)
        }
        fn mark_exchanged(&mut self) {
            self.dirty
                .store(false, std::sync::atomic::Ordering::Relaxed);
        }
    }

    #[test]
    fn arbiter_skips_devices_no_shard_dirtied() {
        use std::sync::atomic::{AtomicBool, AtomicUsize, Ordering};
        let captures = Arc::new(AtomicUsize::new(0));
        let dirty = Arc::new(AtomicBool::new(false));
        let population = || {
            let mut bus = SocBus::new();
            bus.attach(Box::new(Probe {
                captures: Arc::clone(&captures),
                dirty: Arc::clone(&dirty),
            }));
            bus
        };
        let shard0 = SharedSocBus::new(population());
        let shard1 = SharedSocBus::new(population());
        let mut arb = ShardArbiter::new(population(), vec![shard0, shard1]);
        arb.exchange();
        assert_eq!(
            captures.load(Ordering::Relaxed),
            0,
            "a clean device is not captured, merged, or broadcast"
        );
        dirty.store(true, Ordering::Relaxed);
        arb.exchange();
        assert_eq!(
            captures.load(Ordering::Relaxed),
            3,
            "a dirty device is captured on the mirror and both shards"
        );
        assert!(!dirty.load(Ordering::Relaxed), "marked exchanged after");
    }

    fn doorbell_population(core_id: u32, ncores: u32) -> SocBus {
        let mut bus = SocBus::new();
        bus.attach(Box::new(Uart::new(0x100)));
        bus.attach(Box::new(CoreLink::new(0x2000, core_id, ncores)));
        bus
    }

    #[test]
    fn corelink_identity_registers_and_window() {
        let mut link = CoreLink::new(0x2000, 3, 8);
        assert_eq!(link.range(), (0x2000, 0x2c00));
        assert_eq!(link.read(0, 0x2000, 4), 3, "core id");
        assert_eq!(link.read(0, 0x2004, 4), 8, "shard count");
        assert_eq!(link.read(0, 0x2800, 4), 0, "inbox empty");
        // Sends to cores beyond the fabric are dropped.
        link.write(0, 0x2400 + 4 * 9, 4, 1);
        assert!(!link.barrier_dirty());
    }

    #[test]
    fn corelink_delivers_doorbells_at_the_barrier() {
        let shard0 = SharedSocBus::new(doorbell_population(0, 2));
        let shard1 = SharedSocBus::new(doorbell_population(1, 2));
        let mirror = {
            let mut bus = SocBus::new();
            bus.attach(Box::new(Uart::new(0x100)));
            bus.attach(Box::new(CoreLink::mirror(0x2000, 2)));
            bus
        };
        let mut arb = ShardArbiter::new(mirror, vec![shard0.clone(), shard1.clone()]);

        // Core 0 rings core 1 (value 42) and itself (value 7); core 1
        // rings core 0 (value 9). Nothing lands before the barrier.
        shard0.write(1, 0x2400 + 4, 4, 42);
        shard0.write(2, 0x2400, 4, 7);
        shard1.write(3, 0x2400, 4, 9);
        assert_eq!(shard1.read(4, 0x2800, 4), 0, "pre-barrier: no delivery");
        arb.exchange();
        assert_eq!(shard1.read(5, 0x2800, 4), 42, "core 0 → core 1");
        assert_eq!(shard0.read(5, 0x2800, 4), 7, "self-send delivered");
        assert_eq!(shard0.read(5, 0x2804, 4), 9, "core 1 → core 0");
        assert_eq!(shard1.read(5, 0x2804, 4), 0, "not addressed to core 1");

        // Idle epoch: outboxes drained, nothing re-delivered.
        arb.exchange();
        assert_eq!(shard1.read(6, 0x2800, 4), 42, "inbox latches");

        // Identity is construction state: a fabric-wide reset keeps
        // per-core ids while clearing the mailboxes.
        let initial = doorbell_population(0, 2).save_state();
        arb.reset(&initial);
        assert_eq!(shard1.read(7, 0x2000, 4), 1, "id survives reset");
        assert_eq!(shard1.read(7, 0x2800, 4), 0, "inbox cleared");
    }

    #[test]
    fn corelink_state_round_trips_without_identity() {
        let mut link = CoreLink::new(0, 1, 3);
        link.write(0, 0x400 + 8, 4, 5); // ring core 2
        let mut delivered = CoreLink::new(0, 2, 3);
        let d = link.barrier_delta().unwrap();
        delivered.apply_barrier(&d);
        assert_eq!(delivered.read(0, 0x800 + 4, 4), 5, "from core 1");
        let img = delivered.save_state();
        // Restoring core 2's image into another endpoint moves the
        // mailboxes but not the identity.
        let mut fresh = CoreLink::new(0, 0, 3);
        fresh.restore_state(&img);
        assert_eq!(fresh.read(0, 0x0, 4), 0, "identity kept");
        assert_eq!(fresh.read(0, 0x804, 4), 5, "inbox restored");
        assert_eq!(fresh.save_state(), img);
        // Pending sends survive the round trip too.
        let img2 = link.save_state();
        let mut fresh2 = CoreLink::new(0, 1, 3);
        fresh2.restore_state(&img2);
        assert_eq!(fresh2.barrier_delta(), link.barrier_delta());
        assert!(fresh2.barrier_dirty());
    }

    #[test]
    fn default_merge_is_last_differing_shard_wins() {
        let timer = Timer::new(0);
        let base = timer.save_state();
        let mut t1 = Timer::new(0);
        t1.write(0, 0x4, 4, 50);
        let img1 = t1.save_state();
        let unchanged = base.clone();
        assert_eq!(
            timer.merge_state(&base, &[&img1, &unchanged]),
            img1,
            "the changed shard provides the image"
        );
        assert_eq!(
            timer.merge_state(&base, &[&unchanged, &unchanged]),
            base,
            "no change keeps the canonical image"
        );
    }
}

/// Adapter that exposes a [`SharedSocBus`] as the golden model's
/// [`cabt_tricore::sim::IoDevice`], so the *same* peripherals can sit
/// behind the reference simulator and behind the translated platform.
/// SoC time is the golden core's own cycle count, delivered with every
/// access — on the golden side the core *is* the SoC clock, so timer
/// reads and UART timestamps land in exactly the clock domain the
/// synchronization device reproduces for translated runs.
#[derive(Debug)]
pub struct GoldenBridge {
    bus: SharedSocBus,
}

impl GoldenBridge {
    /// Wraps a shared bus.
    pub fn new(bus: SharedSocBus) -> Self {
        GoldenBridge { bus }
    }
}

impl cabt_tricore::sim::IoDevice for GoldenBridge {
    fn io_read(&mut self, cycle: u64, addr: u32, size: u32) -> u32 {
        self.bus.read(cycle, addr, size)
    }

    fn io_write(&mut self, cycle: u64, addr: u32, size: u32, value: u32) {
        self.bus.write(cycle, addr, size, value);
    }
}

//! The SoC bus and its peripherals.
//!
//! The attached hardware "expects to be connected to an SoC bus" and is
//! clocked by the synchronization device's generated cycles. Peripherals
//! receive the current generated-cycle count with every transaction, so
//! time-dependent behaviour (timer expiry, UART byte timestamps) is
//! defined in emulated SoC time — which is exactly what makes device
//! drivers validated on this platform cycle-accurate.
//!
//! Every peripheral is *snapshottable*: [`SocPeripheral::save_state`] /
//! [`SocPeripheral::restore_state`] serialize the device's mutable state
//! to bytes, and [`SocBus::save_state`] bundles the whole bus (devices
//! plus the transaction counter) into a [`SocBusState`]. Session
//! snapshots carry that image, so `snapshot → run → restore → run`
//! replays device behaviour bit-identically — no double-logged UART
//! bytes, no stale timer epochs.
//!
//! For multi-core sharding the bus is shared: a [`SharedSocBus`] is a
//! cloneable handle letting N engines route their I/O windows into one
//! device population, and a [`ShardArbiter`] tracks the epoch boundaries
//! at which shards synchronize and exchanges the canonical device-state
//! image between them.

use std::cell::RefCell;
use std::collections::HashMap;
use std::rc::Rc;

/// A device on the SoC bus.
pub trait SocPeripheral {
    /// `(first, last_exclusive)` address range served by this device.
    fn range(&self) -> (u32, u32);
    /// Handles a read at SoC time `soc_cycle`.
    fn read(&mut self, soc_cycle: u64, addr: u32, size: u32) -> u32;
    /// Handles a write at SoC time `soc_cycle`.
    fn write(&mut self, soc_cycle: u64, addr: u32, size: u32, value: u32);
    /// Transmit log, for peripherals that record output (UARTs).
    fn transmit_log(&self) -> Vec<(u64, u8)> {
        Vec::new()
    }
    /// Serializes the device's mutable state. The encoding is private to
    /// the device — only [`SocPeripheral::restore_state`] of the same
    /// device type needs to understand it. Stateless devices keep the
    /// default (empty) image.
    fn save_state(&self) -> Vec<u8> {
        Vec::new()
    }
    /// Restores state produced by [`SocPeripheral::save_state`] on the
    /// same device type. The default pairs with the default
    /// `save_state`: nothing to restore.
    fn restore_state(&mut self, _state: &[u8]) {}
}

/// Serialized state of every device on a [`SocBus`] plus the bus's own
/// transaction counter — the device half of a resumable platform image.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct SocBusState {
    /// Per-device state images, in attachment order.
    devices: Vec<Vec<u8>>,
    /// Transactions served at capture time.
    transactions: u64,
}

/// A word-level SoC bus with positional device decoding. Unclaimed
/// addresses read zero and ignore writes (open bus) and are *not*
/// counted as transactions — `transactions` counts accesses a device
/// actually served.
#[derive(Default)]
pub struct SocBus {
    devices: Vec<Box<dyn SocPeripheral>>,
    /// Transactions served (diagnostics).
    transactions: u64,
}

impl std::fmt::Debug for SocBus {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("SocBus")
            .field("devices", &self.devices.len())
            .field("transactions", &self.transactions)
            .finish()
    }
}

impl SocBus {
    /// An empty bus.
    pub fn new() -> Self {
        Self::default()
    }

    /// Attaches a peripheral.
    pub fn attach(&mut self, dev: Box<dyn SocPeripheral>) {
        self.devices.push(dev);
    }

    /// Number of transactions served so far (open-bus accesses are not
    /// served and not counted).
    pub fn transactions(&self) -> u64 {
        self.transactions
    }

    /// Routes a read.
    pub fn read(&mut self, soc_cycle: u64, addr: u32, size: u32) -> u32 {
        for d in &mut self.devices {
            let (lo, hi) = d.range();
            if (lo..hi).contains(&addr) {
                self.transactions += 1;
                return d.read(soc_cycle, addr, size);
            }
        }
        0
    }

    /// Routes a write.
    pub fn write(&mut self, soc_cycle: u64, addr: u32, size: u32, value: u32) {
        for d in &mut self.devices {
            let (lo, hi) = d.range();
            if (lo..hi).contains(&addr) {
                self.transactions += 1;
                d.write(soc_cycle, addr, size, value);
                return;
            }
        }
    }

    /// Concatenated transmit logs of all logging peripherals on the bus.
    pub fn uart_log(&self) -> Vec<(u64, u8)> {
        self.devices.iter().flat_map(|d| d.transmit_log()).collect()
    }

    /// Captures the state of every attached device plus the transaction
    /// counter.
    pub fn save_state(&self) -> SocBusState {
        SocBusState {
            devices: self.devices.iter().map(|d| d.save_state()).collect(),
            transactions: self.transactions,
        }
    }

    /// Restores a [`SocBus::save_state`] image into this bus.
    ///
    /// # Panics
    ///
    /// Panics if the image was captured from a bus with a different
    /// device count — state is positional, so the device population
    /// must match.
    pub fn restore_state(&mut self, state: &SocBusState) {
        assert_eq!(
            state.devices.len(),
            self.devices.len(),
            "SocBusState captured from a bus with a different device population"
        );
        for (dev, img) in self.devices.iter_mut().zip(&state.devices) {
            dev.restore_state(img);
        }
        self.transactions = state.transactions;
    }
}

// --- little-endian state (de)serialization helpers ----------------------

fn put_u32(out: &mut Vec<u8>, v: u32) {
    out.extend_from_slice(&v.to_le_bytes());
}

fn put_u64(out: &mut Vec<u8>, v: u64) {
    out.extend_from_slice(&v.to_le_bytes());
}

fn get_u32(bytes: &[u8], at: usize) -> u32 {
    u32::from_le_bytes(bytes[at..at + 4].try_into().expect("u32 field"))
}

fn get_u64(bytes: &[u8], at: usize) -> u64 {
    u64::from_le_bytes(bytes[at..at + 8].try_into().expect("u64 field"))
}

/// A free-running timer clocked by generated SoC cycles.
///
/// Register map (offsets from base): `0x0` current count (read),
/// `0x4` compare value (read/write), `0x8` status — 1 once the count has
/// reached the compare value (read), `0xc` epoch reset (write).
#[derive(Debug)]
pub struct Timer {
    base: u32,
    epoch: u64,
    compare: u32,
}

impl Timer {
    /// A timer at `base`.
    pub fn new(base: u32) -> Self {
        Timer {
            base,
            epoch: 0,
            compare: u32::MAX,
        }
    }
}

impl SocPeripheral for Timer {
    fn range(&self) -> (u32, u32) {
        (self.base, self.base + 0x10)
    }

    fn read(&mut self, soc_cycle: u64, addr: u32, _size: u32) -> u32 {
        let count = soc_cycle.saturating_sub(self.epoch);
        match addr - self.base {
            0x0 => count as u32,
            0x4 => self.compare,
            0x8 => (count >= self.compare as u64) as u32,
            _ => 0,
        }
    }

    fn write(&mut self, soc_cycle: u64, addr: u32, _size: u32, value: u32) {
        match addr - self.base {
            0x4 => self.compare = value,
            0xc => self.epoch = soc_cycle,
            _ => {}
        }
    }

    fn save_state(&self) -> Vec<u8> {
        let mut out = Vec::with_capacity(12);
        put_u64(&mut out, self.epoch);
        put_u32(&mut out, self.compare);
        out
    }

    fn restore_state(&mut self, state: &[u8]) {
        self.epoch = get_u64(state, 0);
        self.compare = get_u32(state, 8);
    }
}

/// A transmit-only UART that logs bytes with their SoC-cycle timestamps.
///
/// Register map: `0x0` data (write to transmit), `0x4` status (reads 1 —
/// always ready).
#[derive(Debug, Default)]
pub struct Uart {
    base: u32,
    log: Vec<(u64, u8)>,
}

impl Uart {
    /// A UART at `base`.
    pub fn new(base: u32) -> Self {
        Uart {
            base,
            log: Vec::new(),
        }
    }

    /// Bytes transmitted so far.
    pub fn transmitted(&self) -> &[(u64, u8)] {
        &self.log
    }
}

impl SocPeripheral for Uart {
    fn range(&self) -> (u32, u32) {
        (self.base, self.base + 0x100)
    }

    fn transmit_log(&self) -> Vec<(u64, u8)> {
        self.log.clone()
    }

    fn read(&mut self, _soc_cycle: u64, addr: u32, _size: u32) -> u32 {
        match addr - self.base {
            0x4 => 1,
            _ => 0,
        }
    }

    fn write(&mut self, soc_cycle: u64, addr: u32, _size: u32, value: u32) {
        if addr - self.base == 0 {
            self.log.push((soc_cycle, value as u8));
        }
    }

    fn save_state(&self) -> Vec<u8> {
        let mut out = Vec::with_capacity(9 * self.log.len());
        for &(ts, byte) in &self.log {
            put_u64(&mut out, ts);
            out.push(byte);
        }
        out
    }

    fn restore_state(&mut self, state: &[u8]) {
        self.log = state
            .chunks_exact(9)
            .map(|c| (get_u64(c, 0), c[8]))
            .collect();
    }
}

/// A scratch RAM window on the SoC bus (shared mailbox / DMA-style
/// buffer). Byte and halfword accesses honor their byte lanes.
#[derive(Debug, Default)]
pub struct ScratchRam {
    base: u32,
    size: u32,
    words: HashMap<u32, u32>,
}

impl ScratchRam {
    /// A RAM of `size` bytes at `base`.
    pub fn new(base: u32, size: u32) -> Self {
        ScratchRam {
            base,
            size,
            words: HashMap::new(),
        }
    }
}

impl SocPeripheral for ScratchRam {
    fn range(&self) -> (u32, u32) {
        (self.base, self.base + self.size)
    }

    fn read(&mut self, _soc_cycle: u64, addr: u32, size: u32) -> u32 {
        let word = *self.words.get(&(addr & !3)).unwrap_or(&0);
        match size {
            1 => (word >> ((addr & 3) * 8)) & 0xff,
            2 => (word >> ((addr & 2) * 8)) & 0xffff,
            _ => word,
        }
    }

    fn write(&mut self, _soc_cycle: u64, addr: u32, size: u32, value: u32) {
        let key = addr & !3;
        let old = *self.words.get(&key).unwrap_or(&0);
        let new = match size {
            1 => {
                let sh = (addr & 3) * 8;
                (old & !(0xff << sh)) | ((value & 0xff) << sh)
            }
            2 => {
                let sh = (addr & 2) * 8;
                (old & !(0xffff << sh)) | ((value & 0xffff) << sh)
            }
            _ => value,
        };
        self.words.insert(key, new);
    }

    fn save_state(&self) -> Vec<u8> {
        // Sorted by address: HashMap iteration order must not leak into
        // the snapshot image (replays compare state bytes for equality).
        let mut entries: Vec<(u32, u32)> = self.words.iter().map(|(&a, &w)| (a, w)).collect();
        entries.sort_unstable();
        let mut out = Vec::with_capacity(8 * entries.len());
        for (addr, word) in entries {
            put_u32(&mut out, addr);
            put_u32(&mut out, word);
        }
        out
    }

    fn restore_state(&mut self, state: &[u8]) {
        self.words = state
            .chunks_exact(8)
            .map(|c| (get_u32(c, 0), get_u32(c, 4)))
            .collect();
    }
}

/// A cloneable handle to one [`SocBus`] — the currency for sharing a
/// device population between execution vehicles: the golden model (via
/// [`GoldenBridge`]), translated platforms, and the shards of a
/// multi-core session all route into the same peripherals through
/// clones of this handle. Accesses are serialized (the workspace's
/// engines are single-threaded and shards interleave deterministically
/// at epoch granularity).
#[derive(Clone)]
pub struct SharedSocBus(Rc<RefCell<SocBus>>);

impl std::fmt::Debug for SharedSocBus {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_tuple("SharedSocBus")
            .field(&*self.0.borrow())
            .finish()
    }
}

impl SharedSocBus {
    /// Wraps a bus into a shareable handle.
    pub fn new(bus: SocBus) -> Self {
        SharedSocBus(Rc::new(RefCell::new(bus)))
    }

    /// Attaches a peripheral. Attach the full device population before
    /// capturing any [`SocBusState`] — state is positional.
    pub fn attach(&self, dev: Box<dyn SocPeripheral>) {
        self.0.borrow_mut().attach(dev);
    }

    /// Routes a read at SoC time `soc_cycle`.
    pub fn read(&self, soc_cycle: u64, addr: u32, size: u32) -> u32 {
        self.0.borrow_mut().read(soc_cycle, addr, size)
    }

    /// Routes a write at SoC time `soc_cycle`.
    pub fn write(&self, soc_cycle: u64, addr: u32, size: u32, value: u32) {
        self.0.borrow_mut().write(soc_cycle, addr, size, value)
    }

    /// Concatenated transmit logs of all logging peripherals.
    pub fn uart_log(&self) -> Vec<(u64, u8)> {
        self.0.borrow().uart_log()
    }

    /// Transactions served so far.
    pub fn transactions(&self) -> u64 {
        self.0.borrow().transactions()
    }

    /// Captures the bus state (see [`SocBus::save_state`]).
    pub fn save_state(&self) -> SocBusState {
        self.0.borrow().save_state()
    }

    /// Restores a captured bus state (see [`SocBus::restore_state`]).
    ///
    /// # Panics
    ///
    /// Panics on a device-population mismatch.
    pub fn restore_state(&self, state: &SocBusState) {
        self.0.borrow_mut().restore_state(state)
    }

    /// True if `other` is a handle to the same underlying bus.
    pub fn same_bus(&self, other: &SharedSocBus) -> bool {
        Rc::ptr_eq(&self.0, &other.0)
    }
}

/// The epoch-synchronized arbiter of a sharded run: N engines share one
/// [`SharedSocBus`] and advance one epoch at a time, so the boundary
/// *is* the exchange point — within an epoch every shard's traffic is
/// serialized onto the same devices, and at the boundary the whole set
/// agrees on one canonical device state. [`ShardArbiter::exchange_state`]
/// materializes that image on demand (for shard migration or external
/// checkpointing); the boundary itself only does O(1) accounting, so
/// epoch frequency never multiplies device-serialization cost.
#[derive(Debug)]
pub struct ShardArbiter {
    bus: SharedSocBus,
    /// Transactions served up to the last epoch boundary.
    boundary_tx: u64,
    /// Epoch boundaries crossed.
    epochs: u64,
}

impl ShardArbiter {
    /// An arbiter over a shared bus, with no boundaries crossed yet.
    pub fn new(bus: SharedSocBus) -> Self {
        ShardArbiter {
            bus,
            boundary_tx: 0,
            epochs: 0,
        }
    }

    /// A clone of the shared-bus handle (what each shard's platform or
    /// golden bridge attaches to).
    pub fn bus(&self) -> SharedSocBus {
        self.bus.clone()
    }

    /// Marks an epoch boundary and returns the number of bus
    /// transactions served during the epoch that just ended.
    pub fn epoch_boundary(&mut self) -> u64 {
        let tx = self.bus.transactions();
        let served = tx - self.boundary_tx;
        self.boundary_tx = tx;
        self.epochs += 1;
        served
    }

    /// Epoch boundaries crossed so far.
    pub fn epochs(&self) -> u64 {
        self.epochs
    }

    /// The canonical device-state image of the current epoch boundary
    /// (`None` before the first boundary). Captured on demand — this is
    /// what a shard handed to another host, or an external checkpoint,
    /// would carry.
    pub fn exchange_state(&self) -> Option<SocBusState> {
        (self.epochs > 0).then(|| self.bus.save_state())
    }

    /// Resets the arbiter's bookkeeping (the bus itself is restored by
    /// its owner).
    pub fn reset(&mut self) {
        self.boundary_tx = 0;
        self.epochs = 0;
    }

    /// Re-synchronizes the arbiter to the bus's *current* (just
    /// restored) state and sets the epoch counter — the restore-side
    /// pair of [`ShardArbiter::epoch_boundary`]. Call after the bus
    /// state has been restored, so the per-epoch transaction accounting
    /// resumes from the restored counter.
    pub fn resync(&mut self, epochs: u64) {
        self.boundary_tx = self.bus.transactions();
        self.epochs = epochs;
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bus_routes_by_range() {
        let mut bus = SocBus::new();
        bus.attach(Box::new(Timer::new(0x1000)));
        bus.attach(Box::new(ScratchRam::new(0x2000, 0x100)));
        bus.write(0, 0x2004, 4, 0xabcd);
        assert_eq!(bus.read(0, 0x2004, 4), 0xabcd);
        assert_eq!(bus.read(5, 0x1000, 4), 5, "timer count");
        assert_eq!(bus.read(0, 0x9999, 4), 0, "open bus reads zero");
        assert_eq!(
            bus.transactions(),
            3,
            "open-bus accesses are not served and not counted"
        );
    }

    #[test]
    fn timer_compare_and_reset() {
        let mut t = Timer::new(0);
        t.write(0, 0x4, 4, 100); // compare = 100
        assert_eq!(t.read(50, 0x8, 4), 0);
        assert_eq!(t.read(100, 0x8, 4), 1);
        t.write(150, 0xc, 4, 0); // reset epoch at soc time 150
        assert_eq!(t.read(170, 0x0, 4), 20);
        assert_eq!(t.read(170, 0x8, 4), 0);
    }

    #[test]
    fn uart_logs_bytes_with_time() {
        let mut u = Uart::new(0x100);
        assert_eq!(u.read(0, 0x104, 4), 1, "always ready");
        u.write(10, 0x100, 4, b'A' as u32);
        u.write(20, 0x100, 4, b'B' as u32);
        assert_eq!(u.transmitted(), &[(10, b'A'), (20, b'B')]);
    }

    #[test]
    fn scratch_ram_round_trips() {
        let mut r = ScratchRam::new(0, 64);
        r.write(0, 16, 4, 42);
        assert_eq!(r.read(0, 16, 4), 42);
        assert_eq!(r.read(0, 20, 4), 0);
    }

    #[test]
    fn scratch_ram_honors_byte_lanes() {
        let mut r = ScratchRam::new(0, 64);
        r.write(0, 8, 4, 0xaabb_ccdd);
        // Byte store replaces one lane, not the whole word.
        r.write(0, 9, 1, 0x11);
        assert_eq!(r.read(0, 8, 4), 0xaabb_11dd);
        // Halfword store replaces the upper lane pair.
        r.write(0, 10, 2, 0x2233);
        assert_eq!(r.read(0, 8, 4), 0x2233_11dd);
        // Sub-word reads extract their lanes, zero-extended.
        assert_eq!(r.read(0, 9, 1), 0x11);
        assert_eq!(r.read(0, 11, 1), 0x22);
        assert_eq!(r.read(0, 8, 2), 0x11dd);
        assert_eq!(r.read(0, 10, 2), 0x2233);
    }

    #[test]
    fn timer_state_round_trips() {
        let mut t = Timer::new(0);
        t.write(0, 0x4, 4, 77); // compare
        t.write(123, 0xc, 4, 0); // epoch = 123
        let img = t.save_state();
        let mut fresh = Timer::new(0);
        fresh.restore_state(&img);
        assert_eq!(fresh.read(200, 0x0, 4), 77, "epoch restored");
        assert_eq!(fresh.read(200, 0x4, 4), 77, "compare restored");
        assert_eq!(fresh.save_state(), img);
    }

    #[test]
    fn uart_state_round_trips() {
        let mut u = Uart::new(0);
        u.write(10, 0, 4, b'X' as u32);
        u.write(900, 0, 4, b'Y' as u32);
        let img = u.save_state();
        let mut fresh = Uart::new(0);
        fresh.restore_state(&img);
        assert_eq!(fresh.transmitted(), u.transmitted());
        // Restoring an earlier image truncates later transmissions —
        // the double-log fix.
        u.write(1000, 0, 4, b'Z' as u32);
        u.restore_state(&img);
        assert_eq!(u.transmitted().len(), 2);
    }

    #[test]
    fn scratch_ram_state_is_deterministic_and_round_trips() {
        let mut r = ScratchRam::new(0, 0x100);
        for i in 0..16u32 {
            r.write(0, (16 - i) * 4, 4, i * 3 + 1);
        }
        let img = r.save_state();
        let mut r2 = ScratchRam::new(0, 0x100);
        for i in (0..16u32).rev() {
            r2.write(0, (16 - i) * 4, 4, i * 3 + 1);
        }
        assert_eq!(
            r2.save_state(),
            img,
            "state image must not depend on insertion order"
        );
        let mut fresh = ScratchRam::new(0, 0x100);
        fresh.restore_state(&img);
        assert_eq!(fresh.read(0, 4 * 4, 4), r.read(0, 4 * 4, 4));
        assert_eq!(fresh.save_state(), img);
    }

    #[test]
    fn bus_state_round_trips_all_devices() {
        let mut bus = SocBus::new();
        bus.attach(Box::new(Timer::new(0x0)));
        bus.attach(Box::new(Uart::new(0x100)));
        bus.attach(Box::new(ScratchRam::new(0x200, 0x100)));
        bus.write(5, 0x200, 4, 99);
        bus.write(7, 0x100, 4, b'!' as u32);
        bus.write(9, 0xc, 4, 0); // timer epoch = 9
        let img = bus.save_state();

        bus.write(20, 0x100, 4, b'?' as u32);
        bus.write(20, 0x204, 4, 1);
        assert_eq!(bus.uart_log().len(), 2);

        bus.restore_state(&img);
        assert_eq!(bus.uart_log(), vec![(7, b'!')]);
        assert_eq!(bus.read(10, 0x204, 4), 0, "later write rolled back");
        assert_eq!(bus.read(10, 0x0, 4), 1, "timer epoch restored (10 - 9)");
        assert_eq!(img, {
            // transactions counter restored too (the reads above advanced it)
            let mut b2 = SocBus::new();
            b2.attach(Box::new(Timer::new(0x0)));
            b2.attach(Box::new(Uart::new(0x100)));
            b2.attach(Box::new(ScratchRam::new(0x200, 0x100)));
            b2.restore_state(&img);
            b2.save_state()
        });
    }

    #[test]
    #[should_panic(expected = "different device population")]
    fn bus_state_rejects_mismatched_population() {
        let mut a = SocBus::new();
        a.attach(Box::new(Timer::new(0)));
        let img = a.save_state();
        let mut b = SocBus::new();
        b.attach(Box::new(Timer::new(0)));
        b.attach(Box::new(Uart::new(0x100)));
        b.restore_state(&img);
    }

    #[test]
    fn shared_bus_serves_multiple_handles() {
        let bus = SharedSocBus::new(SocBus::new());
        bus.attach(Box::new(Uart::new(0x100)));
        let other = bus.clone();
        bus.write(1, 0x100, 4, b'a' as u32);
        other.write(2, 0x100, 4, b'b' as u32);
        assert_eq!(bus.uart_log(), vec![(1, b'a'), (2, b'b')]);
        assert!(bus.same_bus(&other));
        assert!(!bus.same_bus(&SharedSocBus::new(SocBus::new())));
    }

    #[test]
    fn arbiter_tracks_epoch_boundaries_and_exchange_state() {
        let bus = SharedSocBus::new(SocBus::new());
        bus.attach(Box::new(Uart::new(0x100)));
        let mut arb = ShardArbiter::new(bus.clone());
        assert_eq!(arb.epochs(), 0);
        assert!(arb.exchange_state().is_none());

        bus.write(1, 0x100, 4, b'x' as u32);
        assert_eq!(arb.epoch_boundary(), 1, "one transaction this epoch");
        assert_eq!(arb.epochs(), 1);
        let canonical = arb.exchange_state().unwrap();
        assert_eq!(canonical, bus.save_state());

        assert_eq!(arb.epoch_boundary(), 0, "idle epoch");
        arb.reset();
        assert_eq!(arb.epochs(), 0);
        assert!(arb.exchange_state().is_none());
    }
}

/// Adapter that exposes a [`SharedSocBus`] as the golden model's
/// [`cabt_tricore::sim::IoDevice`], so the *same* peripherals can sit
/// behind the reference simulator and behind the translated platform.
/// SoC time is the golden core's own cycle count, delivered with every
/// access — on the golden side the core *is* the SoC clock, so timer
/// reads and UART timestamps land in exactly the clock domain the
/// synchronization device reproduces for translated runs.
#[derive(Debug)]
pub struct GoldenBridge {
    bus: SharedSocBus,
}

impl GoldenBridge {
    /// Wraps a shared bus.
    pub fn new(bus: SharedSocBus) -> Self {
        GoldenBridge { bus }
    }
}

impl cabt_tricore::sim::IoDevice for GoldenBridge {
    fn io_read(&mut self, cycle: u64, addr: u32, size: u32) -> u32 {
        self.bus.read(cycle, addr, size)
    }

    fn io_write(&mut self, cycle: u64, addr: u32, size: u32, value: u32) {
        self.bus.write(cycle, addr, size, value);
    }
}

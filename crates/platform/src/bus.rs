//! The SoC bus and its peripherals.
//!
//! The attached hardware "expects to be connected to an SoC bus" and is
//! clocked by the synchronization device's generated cycles. Peripherals
//! receive the current generated-cycle count with every transaction, so
//! time-dependent behaviour (timer expiry, UART byte timestamps) is
//! defined in emulated SoC time — which is exactly what makes device
//! drivers validated on this platform cycle-accurate.

use std::collections::HashMap;

/// A device on the SoC bus.
pub trait SocPeripheral {
    /// `(first, last_exclusive)` address range served by this device.
    fn range(&self) -> (u32, u32);
    /// Handles a read at SoC time `soc_cycle`.
    fn read(&mut self, soc_cycle: u64, addr: u32, size: u32) -> u32;
    /// Handles a write at SoC time `soc_cycle`.
    fn write(&mut self, soc_cycle: u64, addr: u32, size: u32, value: u32);
    /// Transmit log, for peripherals that record output (UARTs).
    fn transmit_log(&self) -> Vec<(u64, u8)> {
        Vec::new()
    }
}

/// A word-level SoC bus with positional device decoding. Unclaimed
/// addresses read zero and ignore writes (open bus).
#[derive(Default)]
pub struct SocBus {
    devices: Vec<Box<dyn SocPeripheral>>,
    /// Transactions served (diagnostics).
    transactions: u64,
}

impl std::fmt::Debug for SocBus {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("SocBus")
            .field("devices", &self.devices.len())
            .field("transactions", &self.transactions)
            .finish()
    }
}

impl SocBus {
    /// An empty bus.
    pub fn new() -> Self {
        Self::default()
    }

    /// Attaches a peripheral.
    pub fn attach(&mut self, dev: Box<dyn SocPeripheral>) {
        self.devices.push(dev);
    }

    /// Number of transactions served so far.
    pub fn transactions(&self) -> u64 {
        self.transactions
    }

    /// Routes a read.
    pub fn read(&mut self, soc_cycle: u64, addr: u32, size: u32) -> u32 {
        self.transactions += 1;
        for d in &mut self.devices {
            let (lo, hi) = d.range();
            if (lo..hi).contains(&addr) {
                return d.read(soc_cycle, addr, size);
            }
        }
        0
    }

    /// Routes a write.
    pub fn write(&mut self, soc_cycle: u64, addr: u32, size: u32, value: u32) {
        self.transactions += 1;
        for d in &mut self.devices {
            let (lo, hi) = d.range();
            if (lo..hi).contains(&addr) {
                d.write(soc_cycle, addr, size, value);
                return;
            }
        }
    }

    /// Concatenated transmit logs of all logging peripherals on the bus.
    pub fn uart_log(&self) -> Vec<(u64, u8)> {
        self.devices.iter().flat_map(|d| d.transmit_log()).collect()
    }
}

/// A free-running timer clocked by generated SoC cycles.
///
/// Register map (offsets from base): `0x0` current count (read),
/// `0x4` compare value (read/write), `0x8` status — 1 once the count has
/// reached the compare value (read), `0xc` epoch reset (write).
#[derive(Debug)]
pub struct Timer {
    base: u32,
    epoch: u64,
    compare: u32,
}

impl Timer {
    /// A timer at `base`.
    pub fn new(base: u32) -> Self {
        Timer {
            base,
            epoch: 0,
            compare: u32::MAX,
        }
    }
}

impl SocPeripheral for Timer {
    fn range(&self) -> (u32, u32) {
        (self.base, self.base + 0x10)
    }

    fn read(&mut self, soc_cycle: u64, addr: u32, _size: u32) -> u32 {
        let count = soc_cycle.saturating_sub(self.epoch);
        match addr - self.base {
            0x0 => count as u32,
            0x4 => self.compare,
            0x8 => (count >= self.compare as u64) as u32,
            _ => 0,
        }
    }

    fn write(&mut self, soc_cycle: u64, addr: u32, _size: u32, value: u32) {
        match addr - self.base {
            0x4 => self.compare = value,
            0xc => self.epoch = soc_cycle,
            _ => {}
        }
    }
}

/// A transmit-only UART that logs bytes with their SoC-cycle timestamps.
///
/// Register map: `0x0` data (write to transmit), `0x4` status (reads 1 —
/// always ready).
#[derive(Debug, Default)]
pub struct Uart {
    base: u32,
    log: Vec<(u64, u8)>,
}

impl Uart {
    /// A UART at `base`.
    pub fn new(base: u32) -> Self {
        Uart {
            base,
            log: Vec::new(),
        }
    }

    /// Bytes transmitted so far.
    pub fn transmitted(&self) -> &[(u64, u8)] {
        &self.log
    }
}

impl SocPeripheral for Uart {
    fn range(&self) -> (u32, u32) {
        (self.base, self.base + 0x100)
    }

    fn transmit_log(&self) -> Vec<(u64, u8)> {
        self.log.clone()
    }

    fn read(&mut self, _soc_cycle: u64, addr: u32, _size: u32) -> u32 {
        match addr - self.base {
            0x4 => 1,
            _ => 0,
        }
    }

    fn write(&mut self, soc_cycle: u64, addr: u32, _size: u32, value: u32) {
        if addr - self.base == 0 {
            self.log.push((soc_cycle, value as u8));
        }
    }
}

/// A scratch RAM window on the SoC bus (for DMA-style tests).
#[derive(Debug, Default)]
pub struct ScratchRam {
    base: u32,
    size: u32,
    words: HashMap<u32, u32>,
}

impl ScratchRam {
    /// A RAM of `size` bytes at `base`.
    pub fn new(base: u32, size: u32) -> Self {
        ScratchRam {
            base,
            size,
            words: HashMap::new(),
        }
    }
}

impl SocPeripheral for ScratchRam {
    fn range(&self) -> (u32, u32) {
        (self.base, self.base + self.size)
    }

    fn read(&mut self, _soc_cycle: u64, addr: u32, _size: u32) -> u32 {
        *self.words.get(&(addr & !3)).unwrap_or(&0)
    }

    fn write(&mut self, _soc_cycle: u64, addr: u32, _size: u32, value: u32) {
        self.words.insert(addr & !3, value);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bus_routes_by_range() {
        let mut bus = SocBus::new();
        bus.attach(Box::new(Timer::new(0x1000)));
        bus.attach(Box::new(ScratchRam::new(0x2000, 0x100)));
        bus.write(0, 0x2004, 4, 0xabcd);
        assert_eq!(bus.read(0, 0x2004, 4), 0xabcd);
        assert_eq!(bus.read(5, 0x1000, 4), 5, "timer count");
        assert_eq!(bus.read(0, 0x9999, 4), 0, "open bus reads zero");
        assert_eq!(bus.transactions(), 4);
    }

    #[test]
    fn timer_compare_and_reset() {
        let mut t = Timer::new(0);
        t.write(0, 0x4, 4, 100); // compare = 100
        assert_eq!(t.read(50, 0x8, 4), 0);
        assert_eq!(t.read(100, 0x8, 4), 1);
        t.write(150, 0xc, 4, 0); // reset epoch at soc time 150
        assert_eq!(t.read(170, 0x0, 4), 20);
        assert_eq!(t.read(170, 0x8, 4), 0);
    }

    #[test]
    fn uart_logs_bytes_with_time() {
        let mut u = Uart::new(0x100);
        assert_eq!(u.read(0, 0x104, 4), 1, "always ready");
        u.write(10, 0x100, 4, b'A' as u32);
        u.write(20, 0x100, 4, b'B' as u32);
        assert_eq!(u.transmitted(), &[(10, b'A'), (20, b'B')]);
    }

    #[test]
    fn scratch_ram_round_trips() {
        let mut r = ScratchRam::new(0, 64);
        r.write(0, 16, 4, 42);
        assert_eq!(r.read(0, 16, 4), 42);
        assert_eq!(r.read(0, 20, 4), 0);
    }
}

/// Adapter that exposes a [`SocBus`] as the golden model's
/// [`cabt_tricore::sim::IoDevice`], so the *same* peripherals can sit
/// behind the reference simulator and behind the translated platform.
/// SoC time is taken from the golden model's own cycle progression via a
/// caller-updated handle.
#[derive(Debug)]
pub struct GoldenBridge {
    bus: std::rc::Rc<std::cell::RefCell<SocBus>>,
    /// Monotonic access counter used as SoC time on the golden side
    /// (the golden core *is* the SoC clock, one access per bus cycle).
    accesses: u64,
}

impl GoldenBridge {
    /// Wraps a shared bus.
    pub fn new(bus: std::rc::Rc<std::cell::RefCell<SocBus>>) -> Self {
        GoldenBridge { bus, accesses: 0 }
    }
}

impl cabt_tricore::sim::IoDevice for GoldenBridge {
    fn io_read(&mut self, addr: u32, size: u32) -> u32 {
        self.accesses += 1;
        self.bus.borrow_mut().read(self.accesses, addr, size)
    }

    fn io_write(&mut self, addr: u32, size: u32, value: u32) {
        self.accesses += 1;
        self.bus
            .borrow_mut()
            .write(self.accesses, addr, size, value);
    }
}

//! Architecture description of the source processor.
//!
//! The paper keeps "a description of the pipelines and the caches of the
//! processor" in an XML file and feeds it to the translator; the golden
//! reference model must obviously agree with it. Here the description is
//! typed Rust data — [`Timing`], [`CacheConfig`], [`ArchDesc`] — and the
//! *same* incremental timing machine ([`TimingModel`]) is used by
//!
//! * the golden-model simulator ([`crate::sim`]), which feeds it the
//!   dynamic instruction stream and actual branch outcomes, and
//! * the translator's static cycle calculator (`cabt-core`), which feeds
//!   it one basic block at a time from a fresh [`TimingState`] and uses
//!   the *minimum* branch cost, exactly as §3.3 of the paper prescribes.
//!
//! Because both consumers share this one model, the only sources of
//! static-prediction error are the genuine ones from the paper: effects
//! that cross basic-block boundaries, branch outcomes, and cache misses.

use crate::isa::Instr;
use cabt_isa::codec::{ByteReader, ByteWriter, CodecError};

/// Issue pipeline of an instruction (the TriCore-style dual pipe).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum IssueClass {
    /// Integer pipeline (data-register ALU and moves).
    Ip,
    /// Load/store pipeline (memory and address-register operations).
    Ls,
    /// Branch (terminates an issue group).
    Br,
}

/// Classifies an instruction into its issue pipeline.
pub fn issue_class(instr: &Instr) -> IssueClass {
    use Instr::*;
    match instr {
        Ld { .. }
        | LdA { .. }
        | St { .. }
        | StA { .. }
        | LdW16 { .. }
        | StW16 { .. }
        | Lea { .. }
        | MovA { .. }
        | MovAA { .. }
        | MovhA { .. }
        | MovD { .. } => IssueClass::Ls,
        J { .. }
        | Jl { .. }
        | Ji { .. }
        | Jli { .. }
        | Jcond { .. }
        | JcondZ { .. }
        | Loop { .. }
        | Ret16
        | Debug16 => IssueClass::Br,
        _ => IssueClass::Ip,
    }
}

/// Latency and branch-cost parameters of the source pipeline.
///
/// All costs are in source-processor cycles. Conditional-branch costs
/// follow the static-prediction scheme of §3.4.1: each branch has a
/// minimum cost (added statically) plus outcome-dependent extra cycles
/// (added by the dynamic correction code).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Timing {
    /// Result latency of simple ALU operations.
    pub alu_latency: u32,
    /// Result latency of `mul`/`madd`/`msub`.
    pub mul_latency: u32,
    /// Occupancy (and result latency) of the iterative divider.
    pub div_cycles: u32,
    /// Result latency of loads (`load_latency - 1` is the load-use stall).
    pub load_latency: u32,
    /// Cost of unconditional control transfers (`j`, `jl`, `ji`, `ret`).
    pub jump_cycles: u32,
    /// Cost of a conditional branch that was predicted taken and is taken.
    pub cond_taken_correct: u32,
    /// Cost of a conditional branch that was predicted not-taken and
    /// falls through.
    pub cond_nottaken_correct: u32,
    /// Cost of a mispredicted conditional branch (either direction).
    pub cond_mispredict: u32,
    /// Cost of a `loop` instruction that branches back (loop pipeline).
    pub loop_taken: u32,
    /// Cost of a `loop` instruction that exits.
    pub loop_exit: u32,
}

impl Default for Timing {
    fn default() -> Self {
        Timing {
            alu_latency: 1,
            mul_latency: 2,
            div_cycles: 17,
            load_latency: 2,
            jump_cycles: 2,
            cond_taken_correct: 2,
            cond_nottaken_correct: 1,
            cond_mispredict: 3,
            loop_taken: 1,
            loop_exit: 2,
        }
    }
}

impl Timing {
    /// Static BTFN (backward-taken / forward-not-taken) branch
    /// prediction, plus always-taken for the loop pipeline.
    ///
    /// Returns `None` for non-conditional instructions.
    pub fn predicts_taken(&self, instr: &Instr) -> Option<bool> {
        match *instr {
            Instr::Jcond { disp16, .. } | Instr::JcondZ { disp16, .. } => Some(disp16 < 0),
            Instr::Loop { .. } => Some(true),
            _ => None,
        }
    }

    /// The guaranteed minimum cost of a control transfer — the number the
    /// paper folds into the static per-block cycle count ("such a
    /// conditional branch needs a minimum number of cycles in all cases").
    pub fn control_min(&self, instr: &Instr) -> u32 {
        match *instr {
            Instr::J { .. }
            | Instr::Jl { .. }
            | Instr::Ji { .. }
            | Instr::Jli { .. }
            | Instr::Ret16 => self.jump_cycles,
            Instr::Jcond { disp16, .. } | Instr::JcondZ { disp16, .. } => {
                if disp16 < 0 {
                    // predicted taken: both outcomes cost at least the
                    // taken-correct cost
                    self.cond_taken_correct.min(self.cond_mispredict)
                } else {
                    self.cond_nottaken_correct.min(self.cond_mispredict)
                }
            }
            Instr::Loop { .. } => self.loop_taken.min(self.loop_exit),
            Instr::Debug16 => 1,
            _ => 0,
        }
    }

    /// Extra cycles of a conditional branch beyond [`Timing::control_min`],
    /// given the actual direction. This is exactly what the paper's
    /// inserted correction code computes at run time.
    pub fn control_extra(&self, instr: &Instr, taken: bool) -> u32 {
        let full = self.control_cost(instr, taken);
        full - self.control_min(instr)
    }

    /// Full dynamic cost of a control transfer given its direction.
    pub fn control_cost(&self, instr: &Instr, taken: bool) -> u32 {
        match *instr {
            Instr::J { .. }
            | Instr::Jl { .. }
            | Instr::Ji { .. }
            | Instr::Jli { .. }
            | Instr::Ret16 => self.jump_cycles,
            Instr::Jcond { .. } | Instr::JcondZ { .. } => {
                let predicted = self.predicts_taken(instr).expect("conditional");
                match (predicted, taken) {
                    (true, true) => self.cond_taken_correct,
                    (false, false) => self.cond_nottaken_correct,
                    _ => self.cond_mispredict,
                }
            }
            Instr::Loop { .. } => {
                if taken {
                    self.loop_taken
                } else {
                    self.loop_exit
                }
            }
            Instr::Debug16 => 1,
            _ => 0,
        }
    }

    /// Result latency of a non-control instruction.
    pub fn result_latency(&self, instr: &Instr) -> u32 {
        use crate::isa::BinOp;
        match instr {
            Instr::Ld { .. } | Instr::LdA { .. } | Instr::LdW16 { .. } => self.load_latency,
            Instr::Bin { op: BinOp::Mul, .. } | Instr::Madd { .. } | Instr::Msub { .. } => {
                self.mul_latency
            }
            Instr::Bin { op: BinOp::Div, .. }
            | Instr::Bin { op: BinOp::Rem, .. }
            | Instr::BinI { op: BinOp::Div, .. }
            | Instr::BinI { op: BinOp::Rem, .. } => self.div_cycles,
            Instr::BinI { op: BinOp::Mul, .. } => self.mul_latency,
            _ => self.alu_latency,
        }
    }

    /// Issue occupancy of an instruction (cycles the issue stage is
    /// blocked). Only the iterative divider is non-pipelined.
    pub fn occupancy(&self, instr: &Instr) -> u32 {
        use crate::isa::BinOp;
        match instr {
            Instr::Bin { op: BinOp::Div, .. }
            | Instr::Bin { op: BinOp::Rem, .. }
            | Instr::BinI { op: BinOp::Div, .. }
            | Instr::BinI { op: BinOp::Rem, .. } => self.div_cycles,
            _ => 1,
        }
    }
}

/// Geometry of the instruction cache.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct CacheConfig {
    /// Number of sets.
    pub sets: u32,
    /// Associativity.
    pub ways: u32,
    /// Line size in bytes (power of two).
    pub line_bytes: u32,
    /// Extra cycles per line fill on a miss.
    pub miss_penalty: u32,
}

impl Default for CacheConfig {
    fn default() -> Self {
        // 1 KiB, 2-way, 32-byte lines: small enough that real programs
        // exercise misses, as on the TC10GP-class parts.
        CacheConfig {
            sets: 16,
            ways: 2,
            line_bytes: 32,
            miss_penalty: 8,
        }
    }
}

impl CacheConfig {
    /// Total capacity in bytes.
    pub fn total_bytes(&self) -> u32 {
        self.sets * self.ways * self.line_bytes
    }

    /// Line-aligned address of the line containing `addr`.
    pub fn line_of(&self, addr: u32) -> u32 {
        addr & !(self.line_bytes - 1)
    }

    /// Set index of `addr`. Power-of-two geometries (the normal case)
    /// use shifts — this sits on the per-instruction fetch path.
    pub fn set_of(&self, addr: u32) -> u32 {
        if self.line_bytes.is_power_of_two() && self.sets.is_power_of_two() {
            (addr >> self.line_bytes.trailing_zeros()) & (self.sets - 1)
        } else {
            (addr / self.line_bytes) % self.sets
        }
    }

    /// Tag of `addr` (the address bits above the index).
    pub fn tag_of(&self, addr: u32) -> u32 {
        if self.line_bytes.is_power_of_two() && self.sets.is_power_of_two() {
            addr >> (self.line_bytes.trailing_zeros() + self.sets.trailing_zeros())
        } else {
            addr / self.line_bytes / self.sets
        }
    }
}

/// A runnable model of the instruction cache: tags, valid bits and LRU
/// state. Used by the golden model; the translator generates target code
/// that maintains exactly this state in the emulated memory (Fig. 4 of
/// the paper).
#[derive(Debug, Clone)]
pub struct CacheSim {
    cfg: CacheConfig,
    /// `tag | VALID` per (set, way); `u64` so every 32-bit tag fits beside
    /// the valid bit.
    tags: Vec<u64>,
    /// LRU rank per (set, way); 0 = most recently used.
    lru: Vec<u8>,
    hits: u64,
    misses: u64,
}

const VALID: u64 = 1 << 32;

impl CacheSim {
    /// Creates an empty (all-invalid) cache.
    pub fn new(cfg: CacheConfig) -> Self {
        let n = (cfg.sets * cfg.ways) as usize;
        // LRU ranks start as a permutation per set so replacement is
        // well-defined from the first fill on.
        let lru = (0..n).map(|i| (i as u32 % cfg.ways) as u8).collect();
        CacheSim {
            cfg,
            tags: vec![0; n],
            lru,
            hits: 0,
            misses: 0,
        }
    }

    /// The geometry this simulation uses.
    pub fn config(&self) -> &CacheConfig {
        &self.cfg
    }

    /// Total hits so far.
    pub fn hits(&self) -> u64 {
        self.hits
    }

    /// Total misses so far.
    pub fn misses(&self) -> u64 {
        self.misses
    }

    /// Accounts a repeated access to the line accessed immediately
    /// before: a guaranteed hit on the most-recently-used way, whose
    /// LRU re-touch is a no-op (`touch` is idempotent for the MRU
    /// way), so only the hit counter moves — exactly the effect
    /// [`CacheSim::access`] on that line would have. The compiled
    /// dispatch core calls this for fetch runs it proved same-line at
    /// closure-build time, skipping the tag search.
    pub fn repeat_hit(&mut self) {
        self.hits += 1;
    }

    /// True when the line containing `addr` currently sits in the
    /// most-recently-used way of its set. While this holds, any number
    /// of [`CacheSim::access`]es to the line are pure hits with *no*
    /// state change beyond the hit counter (`touch` is idempotent for
    /// the MRU way) — the residency guard behind the trace tier's
    /// batched fetch accounting ([`CacheSim::batch_hits`]).
    #[inline]
    pub fn mru_resident(&self, addr: u32) -> bool {
        let set = self.cfg.set_of(addr);
        let base = (set * self.cfg.ways) as usize;
        let ways = self.cfg.ways as usize;
        let mut mru = 0usize;
        for w in 0..ways {
            if self.lru[base + w] == 0 {
                mru = w;
                break;
            }
        }
        self.tags[base + mru] == (self.cfg.tag_of(addr) as u64 | VALID)
    }

    /// Accounts `n` accesses that are all guaranteed MRU hits (proved
    /// via [`CacheSim::mru_resident`] over every line of a fused run):
    /// the aggregate effect of `n` individual [`CacheSim::access`]es —
    /// `n` hits, no LRU or tag movement — applied in one add.
    #[inline]
    pub fn batch_hits(&mut self, n: u64) {
        self.hits += n;
    }

    /// [`CacheSim::access`] with the most-recently-used way probed
    /// first — the compiled core's lead-access path. A hit on the MRU
    /// way leaves the LRU ranks exactly as a full access would
    /// (`touch` is idempotent there), so only the hit counter moves;
    /// any other outcome falls back to the full search. Effects are
    /// bit-identical to `access`.
    #[inline]
    pub fn access_mru_first(&mut self, addr: u32) -> bool {
        let set = self.cfg.set_of(addr);
        let base = (set * self.cfg.ways) as usize;
        let ways = self.cfg.ways as usize;
        let mut mru = 0usize;
        for w in 0..ways {
            if self.lru[base + w] == 0 {
                mru = w;
                break;
            }
        }
        if self.tags[base + mru] == (self.cfg.tag_of(addr) as u64 | VALID) {
            self.hits += 1;
            return true;
        }
        self.access(addr)
    }

    /// Accesses the line containing `addr`. Returns `true` on hit.
    /// Misses fill the LRU way; both outcomes update LRU ranks.
    pub fn access(&mut self, addr: u32) -> bool {
        let set = self.cfg.set_of(addr);
        let tag = self.cfg.tag_of(addr) as u64;
        let base = (set * self.cfg.ways) as usize;
        let ways = self.cfg.ways as usize;
        let slot = (0..ways).find(|&w| self.tags[base + w] == (tag | VALID));
        match slot {
            Some(w) => {
                self.touch(base, ways, w);
                self.hits += 1;
                true
            }
            None => {
                // Replace the way with the highest LRU rank.
                let victim = (0..ways)
                    .max_by_key(|&w| self.lru[base + w])
                    .expect("at least one way");
                self.tags[base + victim] = tag | VALID;
                self.touch(base, ways, victim);
                self.misses += 1;
                false
            }
        }
    }

    fn touch(&mut self, base: usize, ways: usize, used: usize) {
        let old = self.lru[base + used];
        for w in 0..ways {
            if self.lru[base + w] < old {
                self.lru[base + w] += 1;
            }
        }
        self.lru[base + used] = 0;
    }

    /// Serializes the full cache state (geometry, tags, LRU, counters)
    /// for a portable snapshot.
    pub fn encode_into(&self, out: &mut Vec<u8>) {
        let mut w = ByteWriter::new(out);
        w.u32(self.cfg.sets);
        w.u32(self.cfg.ways);
        w.u32(self.cfg.line_bytes);
        w.u32(self.cfg.miss_penalty);
        w.u64(self.tags.len() as u64);
        for &t in &self.tags {
            w.u64(t);
        }
        w.u64(self.lru.len() as u64);
        w.raw(&self.lru);
        w.u64(self.hits);
        w.u64(self.misses);
    }

    /// Decodes a [`CacheSim::encode_into`] image.
    ///
    /// # Errors
    ///
    /// Returns a [`CodecError`] on truncated or corrupt input.
    pub fn decode(r: &mut ByteReader<'_>) -> Result<Self, CodecError> {
        let cfg = CacheConfig {
            sets: r.u32()?,
            ways: r.u32()?,
            line_bytes: r.u32()?,
            miss_penalty: r.u32()?,
        };
        let ntags = r.count("cache tags", 8)?;
        let mut tags = Vec::with_capacity(ntags);
        for _ in 0..ntags {
            tags.push(r.u64()?);
        }
        let nlru = r.count("cache lru ranks", 1)?;
        let lru = r.raw(nlru)?.to_vec();
        Ok(CacheSim {
            cfg,
            tags,
            lru,
            hits: r.u64()?,
            misses: r.u64()?,
        })
    }
}

/// Complete architecture description: what the paper's XML file carries.
#[derive(Debug, Clone, PartialEq)]
pub struct ArchDesc {
    /// Human-readable name of the described core.
    pub name: String,
    /// Core clock in Hz (the TC10GP board ran at 48 MHz).
    pub clock_hz: u64,
    /// Pipeline timing parameters.
    pub timing: Timing,
    /// Instruction-cache geometry.
    pub cache: CacheConfig,
}

impl Default for ArchDesc {
    fn default() -> Self {
        ArchDesc {
            name: "tc10gp-like".to_string(),
            clock_hz: 48_000_000,
            timing: Timing::default(),
            cache: CacheConfig::default(),
        }
    }
}

/// Incremental dual-issue timing machine shared by the golden model and
/// the static cycle calculator.
///
/// Feed it instructions in (dynamic or static) program order via
/// [`TimingModel::step`]; it accounts issue pairing, operand stalls,
/// divider occupancy, MAC accumulator forwarding and control-transfer
/// costs. Cache penalties are accounted separately by the caller (the
/// golden model knows the dynamic fetch stream; the translated code
/// maintains its own cache state).
#[derive(Debug, Clone)]
pub struct TimingModel {
    timing: Timing,
}

/// Mutable pipeline state threaded through [`TimingModel::step`].
#[derive(Debug, Clone, Default)]
pub struct TimingState {
    /// Cycle at which each register's value is available (index space of
    /// [`Instr::reads`]).
    ready: [u64; 32],
    /// Early-forwarded availability for MAC accumulator chains.
    mac_ready: [u64; 32],
    /// First cycle at which the next issue group can start.
    next: u64,
    /// Open integer-pipe slot that a load/store instruction may pair into.
    pair: Option<PairSlot>,
}

/// An open dual-issue slot. Instructions write at most two registers,
/// so the write set is a fixed-size copy (the hot loop must not
/// allocate).
#[derive(Debug, Clone, Copy)]
struct PairSlot {
    cycle: u64,
    writes: [u8; 2],
    nwrites: u8,
}

impl PairSlot {
    fn writes(&self) -> &[u8] {
        &self.writes[..self.nwrites as usize]
    }
}

impl TimingState {
    /// Fresh pipeline state (everything ready at cycle 0).
    pub fn new() -> Self {
        Self::default()
    }

    /// Total cycles consumed so far (the value of the cycle counter after
    /// the last issue group retires its issue slot).
    pub fn cycles(&self) -> u64 {
        self.next
    }

    /// Inserts `cycles` of external stall (e.g. an instruction-cache line
    /// fill). Fetch stalls break any open dual-issue slot.
    pub fn stall(&mut self, cycles: u64) {
        self.next += cycles;
        self.pair = None;
    }

    /// Serializes the pipeline state for a portable snapshot.
    pub fn encode_into(&self, out: &mut Vec<u8>) {
        let mut w = ByteWriter::new(out);
        for &c in &self.ready {
            w.u64(c);
        }
        for &c in &self.mac_ready {
            w.u64(c);
        }
        w.u64(self.next);
        match self.pair {
            None => w.bool(false),
            Some(p) => {
                w.bool(true);
                w.u64(p.cycle);
                w.raw(&p.writes);
                w.u8(p.nwrites);
            }
        }
    }

    /// Decodes a [`TimingState::encode_into`] image.
    ///
    /// # Errors
    ///
    /// Returns a [`CodecError`] on truncated or corrupt input.
    pub fn decode(r: &mut ByteReader<'_>) -> Result<Self, CodecError> {
        let mut ready = [0u64; 32];
        for c in &mut ready {
            *c = r.u64()?;
        }
        let mut mac_ready = [0u64; 32];
        for c in &mut mac_ready {
            *c = r.u64()?;
        }
        let next = r.u64()?;
        let pair = if r.bool()? {
            let cycle = r.u64()?;
            let writes: [u8; 2] = r.raw(2)?.try_into().expect("2 bytes");
            Some(PairSlot {
                cycle,
                writes,
                nwrites: r.u8()?,
            })
        } else {
            None
        };
        Ok(TimingState {
            ready,
            mac_ready,
            next,
            pair,
        })
    }
}

/// What one [`TimingModel::step`] did.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct StepInfo {
    /// Cycle at which the instruction issued.
    pub issue_cycle: u64,
    /// `true` if it dual-issued into the previous integer slot.
    pub paired: bool,
}

/// Everything [`TimingModel::step`] would otherwise derive from the
/// instruction per step, computed once at decode time. The pre-decoded
/// engines store one of these per instruction so the hot loop reads
/// fields instead of matching on the instruction five times.
#[derive(Debug, Clone, Copy)]
pub struct PreTiming {
    /// Issue pipeline.
    pub class: IssueClass,
    /// Issue occupancy in cycles.
    pub occupancy: u32,
    /// Result latency in cycles.
    pub latency: u32,
    /// Control cost when taken (branches; 0 otherwise).
    pub cost_taken: u32,
    /// Control cost when not taken.
    pub cost_not_taken: u32,
    /// Static minimum control cost.
    pub control_min: u32,
    /// Static prediction (`None` for non-conditionals).
    pub predicts_taken: Option<bool>,
    /// MAC accumulator register index (`0xff` when not a MAC).
    pub mac_acc: u8,
    /// Post-increment base register timing index (`0xff` when none).
    pub postinc_reg: u8,
}

impl TimingModel {
    /// Creates a timing machine over the given parameters.
    pub fn new(timing: Timing) -> Self {
        TimingModel { timing }
    }

    /// The underlying parameters.
    pub fn timing(&self) -> &Timing {
        &self.timing
    }

    /// Computes the per-instruction timing record consumed by
    /// [`TimingModel::step_pre`].
    pub fn pre_timing(&self, instr: &Instr) -> PreTiming {
        let mac_acc = match instr {
            Instr::Madd { acc, .. } | Instr::Msub { acc, .. } => acc.0,
            _ => 0xff,
        };
        let postinc_reg = match instr {
            Instr::Ld {
                base,
                postinc: true,
                ..
            }
            | Instr::LdA {
                base,
                postinc: true,
                ..
            }
            | Instr::St {
                base,
                postinc: true,
                ..
            }
            | Instr::StA {
                base,
                postinc: true,
                ..
            } => base.0 + 16,
            _ => 0xff,
        };
        PreTiming {
            class: issue_class(instr),
            occupancy: self.timing.occupancy(instr),
            latency: self.timing.result_latency(instr),
            cost_taken: self.timing.control_cost(instr, true),
            cost_not_taken: self.timing.control_cost(instr, false),
            control_min: self.timing.control_min(instr),
            predicts_taken: self.timing.predicts_taken(instr),
            mac_acc,
            postinc_reg,
        }
    }

    /// [`TimingModel::step`] over a pre-computed timing record — the
    /// allocation- and match-free variant the pre-decoded dispatch core
    /// runs. `p`, `reads` and `writes` must have been derived from the
    /// same instruction; results are bit-identical to [`TimingModel::step`].
    pub fn step_pre(
        &self,
        st: &mut TimingState,
        p: &PreTiming,
        taken: Option<bool>,
        reads: &[u8],
        writes: &[u8],
    ) -> StepInfo {
        match p.class {
            IssueClass::Ip => self.step_pre_class::<false, false>(st, p, taken, reads, writes),
            IssueClass::Ls => self.step_pre_class::<true, false>(st, p, taken, reads, writes),
            IssueClass::Br => self.step_pre_class::<false, true>(st, p, taken, reads, writes),
        }
    }

    /// [`TimingModel::step_pre`] with the issue class pinned at compile
    /// time (`IS_LS`/`IS_BR`; both false = integer pipe), so the class
    /// dispatch folds away when this inlines into a compiled-block
    /// closure that captured the class at build time. This *is* the
    /// one timing body — `step_pre` is the runtime-dispatch wrapper —
    /// so the cores cannot drift. `p.class` must match the flags.
    #[inline(always)]
    pub fn step_pre_class<const IS_LS: bool, const IS_BR: bool>(
        &self,
        st: &mut TimingState,
        p: &PreTiming,
        taken: Option<bool>,
        reads: &[u8],
        writes: &[u8],
    ) -> StepInfo {
        debug_assert_eq!(
            p.class,
            match (IS_LS, IS_BR) {
                (false, false) => IssueClass::Ip,
                (true, false) => IssueClass::Ls,
                (false, true) => IssueClass::Br,
                (true, true) => unreachable!("a unit has one issue class"),
            }
        );
        // Earliest cycle all operands are ready.
        let mut operands_ready = 0u64;
        for &r in reads {
            let mut avail = st.ready[r as usize];
            // MAC accumulator forwarding: a madd/msub may consume the
            // accumulator produced by the previous MAC one cycle early.
            if p.mac_acc == r {
                avail = avail.min(st.mac_ready[r as usize]);
            }
            operands_ready = operands_ready.max(avail);
        }

        // Try to pair into an open integer slot.
        if IS_LS {
            if let Some(slot) = &st.pair {
                let conflicts = reads
                    .iter()
                    .chain(writes.iter())
                    .any(|r| slot.writes().contains(r));
                if !conflicts && operands_ready <= slot.cycle {
                    let cycle = slot.cycle;
                    st.pair = None;
                    self.retire_pre(st, p, cycle, writes);
                    // `next` was already advanced past `cycle` by the
                    // integer instruction that opened the slot.
                    return StepInfo {
                        issue_cycle: cycle,
                        paired: true,
                    };
                }
            }
        }

        let issue = st.next.max(operands_ready);

        if IS_BR {
            let cost = match taken {
                Some(true) => p.cost_taken,
                Some(false) => p.cost_not_taken,
                None => p.control_min,
            };
            st.next = issue + cost.max(1) as u64;
            st.pair = None;
            // Link-register writes become ready immediately after issue.
            for &w in writes {
                st.ready[w as usize] = issue + 1;
                st.mac_ready[w as usize] = issue + 1;
            }
        } else {
            st.next = issue + p.occupancy as u64;
            st.pair = if !IS_LS {
                let mut w = [0u8; 2];
                w[..writes.len()].copy_from_slice(writes);
                Some(PairSlot {
                    cycle: issue,
                    writes: w,
                    nwrites: writes.len() as u8,
                })
            } else {
                None
            };
            self.retire_pre(st, p, issue, writes);
        }

        StepInfo {
            issue_cycle: issue,
            paired: false,
        }
    }

    fn retire_pre(&self, st: &mut TimingState, p: &PreTiming, issue: u64, writes: &[u8]) {
        let lat = p.latency as u64;
        let is_mac = p.mac_acc != 0xff;
        for &w in writes {
            st.ready[w as usize] = issue + lat;
            st.mac_ready[w as usize] = if is_mac { issue + 1 } else { issue + lat };
        }
        // Post-increment address updates are fast (address ALU).
        if p.postinc_reg != 0xff {
            st.ready[p.postinc_reg as usize] = issue + 1;
            st.mac_ready[p.postinc_reg as usize] = issue + 1;
        }
    }

    /// Accounts one instruction. For conditional control transfers pass
    /// the actual direction in `taken`; pass `None` to account only the
    /// guaranteed minimum cost (the static-calculation mode of §3.3).
    pub fn step(&self, st: &mut TimingState, instr: &Instr, taken: Option<bool>) -> StepInfo {
        self.step_with(st, instr, taken, &instr.reads(), &instr.writes())
    }

    /// Like [`TimingModel::step`] with the instruction's read and write
    /// sets supplied by the caller; `reads`/`writes` must equal
    /// [`Instr::reads`]/[`Instr::writes`] of `instr`. The timing record
    /// is derived on the spot and handed to [`TimingModel::step_pre`],
    /// which owns the one copy of the issue/pair/retire algorithm.
    pub fn step_with(
        &self,
        st: &mut TimingState,
        instr: &Instr,
        taken: Option<bool>,
        reads: &[u8],
        writes: &[u8],
    ) -> StepInfo {
        self.step_pre(st, &self.pre_timing(instr), taken, reads, writes)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::isa::{AReg, BinOp, Cond, DReg, LdKind};

    fn model() -> TimingModel {
        TimingModel::new(Timing::default())
    }

    fn add(d: u8, s1: u8, s2: u8) -> Instr {
        Instr::Bin {
            op: BinOp::Add,
            d: DReg(d),
            s1: DReg(s1),
            s2: DReg(s2),
        }
    }

    fn ldw(d: u8, base: u8) -> Instr {
        Instr::Ld {
            kind: LdKind::W,
            d: DReg(d),
            base: AReg(base),
            off10: 0,
            postinc: false,
        }
    }

    #[test]
    fn independent_alu_ops_take_one_cycle_each() {
        let m = model();
        let mut st = TimingState::new();
        m.step(&mut st, &add(0, 1, 2), None);
        m.step(&mut st, &add(3, 4, 5), None);
        m.step(&mut st, &add(6, 7, 8), None);
        assert_eq!(st.cycles(), 3);
    }

    #[test]
    fn ip_ls_pair_dual_issues() {
        let m = model();
        let mut st = TimingState::new();
        let i1 = m.step(&mut st, &add(0, 1, 2), None);
        let i2 = m.step(&mut st, &ldw(3, 4), None);
        assert!(!i1.paired);
        assert!(i2.paired);
        assert_eq!(i1.issue_cycle, i2.issue_cycle);
        assert_eq!(st.cycles(), 1);
    }

    #[test]
    fn dependent_ls_does_not_pair() {
        let m = model();
        let mut st = TimingState::new();
        // add writes d3; store reads d3 -> cannot share the cycle.
        m.step(&mut st, &add(3, 1, 2), None);
        let st_instr = Instr::St {
            kind: crate::isa::StKind::W,
            s: DReg(3),
            base: AReg(4),
            off10: 0,
            postinc: false,
        };
        let info = m.step(&mut st, &st_instr, None);
        assert!(!info.paired);
        assert_eq!(st.cycles(), 2);
    }

    #[test]
    fn ls_then_ip_does_not_pair() {
        let m = model();
        let mut st = TimingState::new();
        m.step(&mut st, &ldw(3, 4), None);
        let info = m.step(&mut st, &add(0, 1, 2), None);
        assert!(!info.paired, "pairing is IP-slot first, LS second only");
        assert_eq!(st.cycles(), 2);
    }

    #[test]
    fn load_use_stalls_one_cycle() {
        let m = model();
        let mut st = TimingState::new();
        m.step(&mut st, &ldw(1, 4), None); // d1 ready at cycle 2
        let info = m.step(&mut st, &add(2, 1, 1), None);
        assert_eq!(info.issue_cycle, 2);
        assert_eq!(st.cycles(), 3);
    }

    #[test]
    fn mul_latency_stalls_dependent() {
        let m = model();
        let mut st = TimingState::new();
        let mul = Instr::Bin {
            op: BinOp::Mul,
            d: DReg(1),
            s1: DReg(2),
            s2: DReg(3),
        };
        m.step(&mut st, &mul, None);
        let info = m.step(&mut st, &add(4, 1, 1), None);
        assert_eq!(info.issue_cycle, 2);
    }

    #[test]
    fn mac_chain_forwards_accumulator() {
        let m = model();
        let mut st = TimingState::new();
        let madd = |d: u8, acc: u8| Instr::Madd {
            d: DReg(d),
            acc: DReg(acc),
            s1: DReg(5),
            s2: DReg(6),
        };
        m.step(&mut st, &madd(1, 1), None);
        let info = m.step(&mut st, &madd(1, 1), None);
        assert_eq!(info.issue_cycle, 1, "accumulator chain must not stall");
        // But a plain ALU consumer of the MAC result pays full latency.
        let info = m.step(&mut st, &add(2, 1, 1), None);
        assert_eq!(info.issue_cycle, 3);
    }

    #[test]
    fn divider_blocks_issue() {
        let m = model();
        let mut st = TimingState::new();
        let div = Instr::Bin {
            op: BinOp::Div,
            d: DReg(1),
            s1: DReg(2),
            s2: DReg(3),
        };
        m.step(&mut st, &div, None);
        assert_eq!(st.cycles(), Timing::default().div_cycles as u64);
        let info = m.step(&mut st, &add(4, 5, 6), None);
        assert_eq!(info.issue_cycle, Timing::default().div_cycles as u64);
    }

    #[test]
    fn branch_costs_min_and_dynamic() {
        let t = Timing::default();
        let back = Instr::Jcond {
            cond: Cond::Ne,
            s1: DReg(0),
            s2: DReg(1),
            disp16: -4,
        };
        let fwd = Instr::Jcond {
            cond: Cond::Ne,
            s1: DReg(0),
            s2: DReg(1),
            disp16: 4,
        };
        assert_eq!(t.predicts_taken(&back), Some(true));
        assert_eq!(t.predicts_taken(&fwd), Some(false));
        assert_eq!(t.control_min(&back), 2);
        assert_eq!(t.control_min(&fwd), 1);
        assert_eq!(t.control_cost(&back, true), 2);
        assert_eq!(t.control_cost(&back, false), 3);
        assert_eq!(t.control_cost(&fwd, true), 3);
        assert_eq!(t.control_cost(&fwd, false), 1);
        assert_eq!(t.control_extra(&back, false), 1);
        assert_eq!(t.control_extra(&fwd, true), 2);
        let lp = Instr::Loop {
            a: AReg(2),
            disp16: -6,
        };
        assert_eq!(t.control_min(&lp), 1);
        assert_eq!(t.control_extra(&lp, false), 1);
        assert_eq!(t.control_extra(&lp, true), 0);
    }

    #[test]
    fn branch_closes_issue_group() {
        let m = model();
        let mut st = TimingState::new();
        m.step(&mut st, &add(0, 1, 2), None);
        m.step(&mut st, &Instr::J { disp24: 4 }, None);
        // Branch cannot pair; costs jump_cycles.
        assert_eq!(st.cycles(), 1 + 2);
        // Nothing can pair into a slot after a branch.
        let info = m.step(&mut st, &ldw(3, 4), None);
        assert!(!info.paired);
    }

    #[test]
    fn static_vs_dynamic_agree_on_straightline_code() {
        // For a block without conditionals, min-cost accounting equals
        // dynamic accounting — the invariant that makes level-1
        // translation exact for straight-line code.
        let m = model();
        let prog = [
            add(0, 1, 2),
            ldw(3, 4),
            add(5, 3, 3),
            add(6, 0, 5),
            Instr::J { disp24: 10 },
        ];
        let mut s1 = TimingState::new();
        let mut s2 = TimingState::new();
        for i in &prog {
            m.step(&mut s1, i, None);
            m.step(&mut s2, i, Some(true));
        }
        assert_eq!(s1.cycles(), s2.cycles());
    }

    #[test]
    fn cache_geometry() {
        let c = CacheConfig::default();
        assert_eq!(c.total_bytes(), 1024);
        assert_eq!(c.line_of(0x8000_0047), 0x8000_0040);
        assert_eq!(c.set_of(0x8000_0040), 2);
        assert_eq!(c.set_of(0x8000_0040 + 32 * 16), 2, "wraps around the sets");
        assert_ne!(c.tag_of(0x8000_0040), c.tag_of(0x8000_0040 + 32 * 16));
    }

    #[test]
    fn cache_hits_and_lru_replacement() {
        let mut c = CacheSim::new(CacheConfig {
            sets: 2,
            ways: 2,
            line_bytes: 16,
            miss_penalty: 8,
        });
        // Three distinct lines mapping to set 0: addresses 0, 32, 64.
        assert!(!c.access(0));
        assert!(!c.access(32));
        assert!(c.access(0), "both ways resident");
        assert!(!c.access(64), "fills over LRU way (32)");
        assert!(c.access(0), "0 was MRU, must survive");
        assert!(!c.access(32), "32 was evicted");
        assert_eq!(c.hits(), 2);
        assert_eq!(c.misses(), 4);
    }

    #[test]
    fn cache_respects_associativity_one() {
        let mut c = CacheSim::new(CacheConfig {
            sets: 4,
            ways: 1,
            line_bytes: 16,
            miss_penalty: 8,
        });
        assert!(!c.access(0));
        assert!(!c.access(64)); // same set, direct-mapped conflict
        assert!(!c.access(0));
    }

    #[test]
    fn arch_desc_defaults_match_paper_platform() {
        let a = ArchDesc::default();
        assert_eq!(a.clock_hz, 48_000_000);
        assert_eq!(a.cache.total_bytes(), 1024);
    }
}

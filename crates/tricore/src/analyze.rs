//! TriCore front end for the static analyzer: lowers a decoded ELF
//! image into the [`cabt_exec::analyze::Program`] form the dataflow
//! framework runs over.
//!
//! The lowering mirrors the golden model's load path exactly — same
//! [`decode_section`] walk over `Text` sections, same address-sorted
//! table, same [`Instr::unit_flow`] classification — so the analyzer
//! sees the very block structure the engines execute.
//!
//! Classification notes:
//!
//! * `ret`, `ji` and `jli` lower to [`UnitFlow::Indirect`] — the
//!   conservative bucket the framework treats as
//!   may-transfer-anywhere.
//! * `jl` (and `jli`) are recorded as calls for the
//!   unbounded-recursion walk; their `A11` link write is an ordinary
//!   register write.
//! * The abstract-op fragment covers the ISA's address-forming
//!   instructions (`mov`/`movh`/`movh.a` constants, `lea`/`addi`/
//!   `addih`/immediate `add` offsets, register moves across banks), so
//!   constant propagation can fold the address chains the bundled
//!   workloads use to reach data and MMIO. Post-increment accesses
//!   address through the *pre*-increment base and then add their
//!   displacement, exactly as [`Simulator::ea`] does.
//!
//! [`Simulator::ea`]: crate::sim::Simulator

use crate::encode::decode_section;
use crate::isa::{AReg, BinOp, DReg, Instr, LdKind, StKind};
use crate::sim::SimError;
use cabt_exec::analyze::{AbsOp, GuestUnit, MemAccess, Program};
use cabt_isa::elf::{ElfFile, SectionKind};
use std::collections::HashMap;

/// Flat register index of a data register.
fn d(r: DReg) -> u8 {
    r.0
}

/// Flat register index of an address register.
fn a(r: AReg) -> u8 {
    r.0 + 16
}

/// The stack pointer the loader seeds (`%a10`), as (flat index,
/// value) — the entry constant of the analysis.
pub const ENTRY_SP: (u8, u32) = (26, 0xd003_0000);

/// Flat index of the shard-id register `%d15`, seeded by the fleet
/// loader — the default use-before-def whitelist.
pub const SHARD_ID_REG: u8 = 15;

fn ld_bytes(kind: LdKind) -> u8 {
    match kind {
        LdKind::B | LdKind::Bu => 1,
        LdKind::H | LdKind::Hu => 2,
        LdKind::W => 4,
    }
}

fn st_bytes(kind: StKind) -> u8 {
    match kind {
        StKind::B => 1,
        StKind::H => 2,
        StKind::W => 4,
    }
}

/// A post-increment access: address through the pre-increment base,
/// then bump it by the displacement.
fn postinc_access(
    base: AReg,
    off10: i16,
    postinc: bool,
    bytes: u8,
    store: bool,
) -> (Option<MemAccess>, Vec<AbsOp>) {
    let mem = MemAccess {
        base: a(base),
        offset: if postinc { 0 } else { i32::from(off10) },
        bytes,
        store,
    };
    let ops = if postinc {
        vec![AbsOp::AddImm {
            dst: a(base),
            src: a(base),
            imm: off10 as i32 as u32,
        }]
    } else {
        Vec::new()
    };
    (Some(mem), ops)
}

/// The abstract-op and memory-access lowering of one instruction:
/// the fragment constant propagation can evaluate. Anything not
/// covered is modeled by [`Instr::writes`] alone.
fn abs_effects(instr: &Instr) -> (Vec<AbsOp>, Option<MemAccess>) {
    let c = |dst: u8, value: u32| vec![AbsOp::Const { dst, value }];
    let addi = |dst: u8, src: u8, imm: u32| vec![AbsOp::AddImm { dst, src, imm }];
    let copy = |dst: u8, src: u8| vec![AbsOp::Copy { dst, src }];
    match *instr {
        Instr::Mov16 { d: dd, imm7 } => (c(d(dd), imm7 as i32 as u32), None),
        Instr::Mov { d: dd, imm16 } => (c(d(dd), imm16 as i32 as u32), None),
        Instr::Movh { d: dd, imm16 } => (c(d(dd), u32::from(imm16) << 16), None),
        Instr::MovhA { a: aa, imm16 } => (c(a(aa), u32::from(imm16) << 16), None),
        Instr::Addi { d: dd, s, imm16 } => (addi(d(dd), d(s), imm16 as i32 as u32), None),
        Instr::Addih { d: dd, s, imm16 } => (addi(d(dd), d(s), u32::from(imm16) << 16), None),
        Instr::MovRR16 { d: dd, s } | Instr::MovRR { d: dd, s } => (copy(d(dd), d(s)), None),
        Instr::MovA { a: aa, s } => (copy(a(aa), d(s)), None),
        Instr::MovD { d: dd, a: s } => (copy(d(dd), a(s)), None),
        Instr::MovAA { a: aa, s } => (copy(a(aa), a(s)), None),
        Instr::Lea { a: aa, base, off16 } => (addi(a(aa), a(base), off16 as i32 as u32), None),
        Instr::BinI {
            op: BinOp::Add,
            d: dd,
            s1,
            imm9,
        } => (addi(d(dd), d(s1), imm9 as i32 as u32), None),
        Instr::LdW16 { a: base, .. } => (
            Vec::new(),
            Some(MemAccess {
                base: a(base),
                offset: 0,
                bytes: 4,
                store: false,
            }),
        ),
        Instr::StW16 { a: base, .. } => (
            Vec::new(),
            Some(MemAccess {
                base: a(base),
                offset: 0,
                bytes: 4,
                store: true,
            }),
        ),
        Instr::Ld {
            kind,
            base,
            off10,
            postinc,
            ..
        } => {
            let (mem, ops) = postinc_access(base, off10, postinc, ld_bytes(kind), false);
            (ops, mem)
        }
        Instr::LdA {
            base,
            off10,
            postinc,
            ..
        } => {
            let (mem, ops) = postinc_access(base, off10, postinc, 4, false);
            (ops, mem)
        }
        Instr::St {
            kind,
            base,
            off10,
            postinc,
            ..
        } => {
            let (mem, ops) = postinc_access(base, off10, postinc, st_bytes(kind), true);
            (ops, mem)
        }
        Instr::StA {
            base,
            off10,
            postinc,
            ..
        } => {
            let (mem, ops) = postinc_access(base, off10, postinc, 4, true);
            (ops, mem)
        }
        _ => (Vec::new(), None),
    }
}

/// ISA register naming for findings (flat index → `%dN` / `%aN`).
fn reg_name(r: u8) -> String {
    if r < 16 {
        format!("%d{r}")
    } else {
        format!("%a{}", r - 16)
    }
}

/// Lowers an ELF image into the analyzer's program form: decodes every
/// `Text` section (the golden model's exact load walk), resolves
/// direct targets to table indices, and attaches per-unit effects.
pub fn lower_elf(elf: &ElfFile) -> Result<Program, SimError> {
    let mut decoded: Vec<(u32, Instr)> = Vec::new();
    for s in &elf.sections {
        if s.kind == SectionKind::Text {
            let dec =
                decode_section(s.addr, &s.data).map_err(|_| SimError::PcInvalid { pc: s.addr })?;
            decoded.extend(dec);
        }
    }
    decoded.sort_by_key(|&(addr, _)| addr);
    let index_of: HashMap<u32, u32> = decoded
        .iter()
        .enumerate()
        .map(|(i, &(addr, _))| (addr, i as u32))
        .collect();

    let units: Vec<GuestUnit> = decoded
        .iter()
        .map(|&(pc, instr)| {
            let target = instr.target(pc).and_then(|t| index_of.get(&t)).copied();
            let call = match instr {
                Instr::Jl { .. } => target,
                _ => None,
            };
            let (ops, mem) = abs_effects(&instr);
            GuestUnit {
                pc,
                flow: instr.unit_flow(target),
                reads: instr.reads(),
                writes: instr.writes(),
                ops,
                mem,
                call,
            }
        })
        .collect();
    let contiguous: Vec<bool> = decoded
        .iter()
        .enumerate()
        .map(|(i, &(pc, instr))| {
            decoded
                .get(i + 1)
                .is_some_and(|&(next, _)| next == pc.wrapping_add(instr.size()))
        })
        .collect();
    let entries = index_of.get(&elf.entry).copied().into_iter().collect();

    Ok(Program {
        units,
        entries,
        contiguous,
        entry_defined: vec![ENTRY_SP.0],
        entry_consts: vec![ENTRY_SP],
        reg_name,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::asm::assemble;
    use cabt_exec::analyze::{analyze_program, use_before_def, FindingKind, MemMap, NUM_REGS};

    fn whitelist() -> u64 {
        1u64 << SHARD_ID_REG
    }

    #[test]
    fn lowering_mirrors_golden_block_structure() {
        let elf = assemble(
            r"
            .text
            .global _start
        _start:
            mov   %d2, 0
            mov   %d1, 10
        again:
            add   %d2, %d2, %d1
            addi  %d1, %d1, -1
            jnz   %d1, again
            debug
        ",
        )
        .unwrap();
        let prog = lower_elf(&elf).unwrap();
        assert_eq!(prog.units.len(), 6);
        let g = prog.graph();
        // Three blocks: entry, loop body, halt.
        assert_eq!(g.len(), 3);
        let report = analyze_program(&prog, &MemMap::default(), whitelist(), 16);
        assert!(report.is_clean(), "findings: {:?}", report.findings);
        assert_eq!(report.loops.len(), 1, "the countdown loop");
        assert!(report.predicted[0].loop_back);
    }

    #[test]
    fn undefined_read_is_flagged_with_its_register() {
        let elf = assemble(
            r"
            .text
            .global _start
        _start:
            add   %d2, %d2, %d3
            debug
        ",
        )
        .unwrap();
        let prog = lower_elf(&elf).unwrap();
        let g = prog.graph();
        let f = use_before_def(&prog, &g, whitelist());
        // Both %d2 and %d3 are read before any write.
        assert_eq!(f.len(), 2);
        assert!(f.iter().all(|f| f.kind == FindingKind::UseBeforeDef));
        assert!(f[0].message.contains("%d2"), "{}", f[0].message);
    }

    #[test]
    fn postinc_chain_folds_to_constants() {
        // a2 = 0xd0000000; store word, post-increment by 4 — the
        // second store must see a2 = base + 4.
        let elf = assemble(
            r"
            .text
            .global _start
        _start:
            movh.a %a2, 0xd000
            mov    %d0, 7
            st.w   [%a2+]4, %d0
            st.w   [%a2+]4, %d0
            debug
        ",
        )
        .unwrap();
        let prog = lower_elf(&elf).unwrap();
        let g = prog.graph();
        // Map covering only the first store's word: the second store
        // is provably at 0xd0000004 and must be flagged.
        let mut mem = MemMap::default();
        mem.add(0xd000_0000, 0xd000_0004, "word0");
        let f = cabt_exec::analyze::const_stores(&prog, &g, &mem);
        assert_eq!(f.len(), 1);
        assert_eq!(f[0].kind, FindingKind::WildStore);
        assert!(f[0].message.contains("0xd0000004"), "{}", f[0].message);
    }

    #[test]
    fn entry_seeds_fit_the_flat_space() {
        assert!(usize::from(ENTRY_SP.0) < NUM_REGS);
        assert!(usize::from(SHARD_ID_REG) < NUM_REGS);
    }
}

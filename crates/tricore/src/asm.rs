//! Two-pass assembler for the source ISA, emitting ELF32 images.
//!
//! The paper's flow starts from "a few examples ... compiled using a C
//! compiler into TriCore object code". We do not ship a C compiler; the
//! benchmark programs are written in assembly and this assembler turns
//! them into exactly what the paper's translator consumes: ELF object
//! code with `.text`/`.data`/`.bss` sections and a symbol table.
//!
//! # Syntax
//!
//! ```text
//!     .text                     # section directives
//!     .global _start
//! _start:                       # labels
//!     mov   %d0, 42             # 16-bit form picked automatically
//!     movh.a %a2, hi:table      # hi:/lo: relocation operators
//!     lea   %a2, [%a2]lo:table
//!     ld.w  %d1, [%a2+]4        # post-increment addressing
//!     jne   %d0, %d1, loop_top  # compare-and-branch to a label
//!     ret
//!     .data
//! table: .word 1, 2, 3, sym+4   # data directives: .word .half .byte
//!     .space 64                 # reserve zeroed bytes
//!     .align 4
//! ```
//!
//! Comments start with `#` or `;`. Short 16-bit encodings are selected
//! automatically whenever the operand *form* permits it (literal
//! immediate in range, zero offset, two-operand add/sub), which keeps
//! instruction sizes identical between the two passes.

use crate::encode::encode_into;
use crate::isa::{AReg, BinOp, Cond, DReg, Instr, LdKind, StKind};
use cabt_isa::elf::{ElfFile, Section, Symbol, SymbolKind, EM_TRICORE};
use std::collections::HashMap;
use std::fmt;

/// Default load address of `.text`.
pub const TEXT_BASE: u32 = 0x8000_0000;
/// Default load address of `.data`.
pub const DATA_BASE: u32 = 0xd000_0000;
/// Default load address of `.bss`.
pub const BSS_BASE: u32 = 0xd002_0000;

/// An assembly error with its 1-based source line.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct AsmError {
    /// 1-based line number in the source text.
    pub line: u32,
    /// Human-readable description.
    pub msg: String,
}

impl fmt::Display for AsmError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "line {}: {}", self.line, self.msg)
    }
}

impl std::error::Error for AsmError {}

fn err<T>(line: u32, msg: impl Into<String>) -> Result<T, AsmError> {
    Err(AsmError {
        line,
        msg: msg.into(),
    })
}

/// hi:/lo: operator applied to a symbolic value.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum Part {
    None,
    Hi,
    Lo,
}

/// A parsed operand.
#[derive(Debug, Clone, PartialEq)]
enum Arg {
    D(DReg),
    A(AReg),
    Imm(i64),
    Sym {
        name: String,
        add: i64,
        part: Part,
    },
    Mem {
        base: AReg,
        postinc: bool,
        off: Box<Arg>,
    },
}

impl Arg {
    fn d(&self, line: u32) -> Result<DReg, AsmError> {
        match self {
            Arg::D(r) => Ok(*r),
            _ => err(line, "expected a data register"),
        }
    }

    fn a(&self, line: u32) -> Result<AReg, AsmError> {
        match self {
            Arg::A(r) => Ok(*r),
            _ => err(line, "expected an address register"),
        }
    }
}

#[derive(Debug, Clone)]
enum ItemKind {
    Instr { mnemonic: String, args: Vec<Arg> },
    Word(Vec<Arg>),
    Half(Vec<Arg>),
    Byte(Vec<Arg>),
    Space(u32),
}

#[derive(Debug, Clone)]
struct Item {
    line: u32,
    addr: u32,
    section: SectionId,
    kind: ItemKind,
}

#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum SectionId {
    Text,
    Data,
    Bss,
}

/// Assembles source text into an ELF32 image.
///
/// # Errors
///
/// Returns [`AsmError`] (with line number) for syntax errors, unknown
/// mnemonics, out-of-range immediates, undefined symbols or misplaced
/// directives.
///
/// # Example
///
/// ```
/// let elf = cabt_tricore::asm::assemble(".text\n_start: debug\n")?;
/// assert_eq!(elf.entry, cabt_tricore::asm::TEXT_BASE);
/// # Ok::<(), cabt_tricore::asm::AsmError>(())
/// ```
pub fn assemble(src: &str) -> Result<ElfFile, AsmError> {
    Assembler::new().assemble(src)
}

/// The two-pass assembler. Use [`assemble`] unless you need custom
/// section base addresses.
#[derive(Debug, Clone)]
pub struct Assembler {
    text_base: u32,
    data_base: u32,
    bss_base: u32,
}

impl Default for Assembler {
    fn default() -> Self {
        Self::new()
    }
}

impl Assembler {
    /// Creates an assembler with the default memory map.
    pub fn new() -> Self {
        Assembler {
            text_base: TEXT_BASE,
            data_base: DATA_BASE,
            bss_base: BSS_BASE,
        }
    }

    /// Overrides the `.text` base address.
    pub fn with_text_base(mut self, base: u32) -> Self {
        self.text_base = base;
        self
    }

    /// Overrides the `.data` base address.
    pub fn with_data_base(mut self, base: u32) -> Self {
        self.data_base = base;
        self
    }

    /// Runs both passes over `src`.
    ///
    /// # Errors
    ///
    /// See [`assemble`].
    pub fn assemble(&self, src: &str) -> Result<ElfFile, AsmError> {
        // ---- pass 1: parse, size, lay out, collect symbols ----
        let mut items: Vec<Item> = Vec::new();
        let mut symbols: HashMap<String, (u32, SectionId)> = HashMap::new();
        let mut globals: Vec<String> = Vec::new();
        let mut section = SectionId::Text;
        let mut pc = [self.text_base, self.data_base, self.bss_base];
        let idx = |s: SectionId| match s {
            SectionId::Text => 0usize,
            SectionId::Data => 1,
            SectionId::Bss => 2,
        };

        for (lineno, raw) in src.lines().enumerate() {
            let line = lineno as u32 + 1;
            let mut text = raw;
            if let Some(p) = text.find(['#', ';']) {
                text = &text[..p];
            }
            let mut text = text.trim();

            // Labels (possibly several) at the start of the line.
            while let Some(colon) = text.find(':') {
                let (head, rest) = text.split_at(colon);
                let name = head.trim();
                if name.is_empty()
                    || !name
                        .chars()
                        .all(|c| c.is_ascii_alphanumeric() || c == '_' || c == '.')
                    || name.starts_with('.')
                    || rest.is_empty()
                {
                    break;
                }
                // "hi:" / "lo:" inside operands never reach here because
                // labels are only recognized before the mnemonic.
                if symbols
                    .insert(name.to_string(), (pc[idx(section)], section))
                    .is_some()
                {
                    return err(line, format!("duplicate label `{name}`"));
                }
                text = rest[1..].trim();
            }
            if text.is_empty() {
                continue;
            }

            if let Some(directive) = text.strip_prefix('.') {
                let (name, rest) = match directive.find(char::is_whitespace) {
                    Some(p) => (&directive[..p], directive[p..].trim()),
                    None => (directive, ""),
                };
                match name {
                    "text" => section = SectionId::Text,
                    "data" => section = SectionId::Data,
                    "bss" => section = SectionId::Bss,
                    "global" | "globl" => globals.push(rest.to_string()),
                    "org" => {
                        let v = parse_number(rest).ok_or_else(|| AsmError {
                            line,
                            msg: "bad .org value".into(),
                        })?;
                        pc[idx(section)] = v as u32;
                    }
                    "align" => {
                        let v = parse_number(rest).ok_or_else(|| AsmError {
                            line,
                            msg: "bad .align value".into(),
                        })? as u32;
                        if v == 0 || !v.is_power_of_two() {
                            return err(line, ".align requires a power of two");
                        }
                        let cur = pc[idx(section)];
                        let pad = (v - (cur % v)) % v;
                        if pad > 0 {
                            items.push(Item {
                                line,
                                addr: cur,
                                section,
                                kind: ItemKind::Space(pad),
                            });
                            pc[idx(section)] += pad;
                        }
                    }
                    "space" | "skip" => {
                        let v = parse_number(rest).ok_or_else(|| AsmError {
                            line,
                            msg: "bad .space value".into(),
                        })? as u32;
                        items.push(Item {
                            line,
                            addr: pc[idx(section)],
                            section,
                            kind: ItemKind::Space(v),
                        });
                        pc[idx(section)] += v;
                    }
                    "word" | "half" | "byte" => {
                        if section == SectionId::Text {
                            return err(line, "data directives are not allowed in .text");
                        }
                        let args = parse_args(rest, line)?;
                        let (kind, unit) = match name {
                            "word" => (ItemKind::Word(args.clone()), 4),
                            "half" => (ItemKind::Half(args.clone()), 2),
                            _ => (ItemKind::Byte(args.clone()), 1),
                        };
                        items.push(Item {
                            line,
                            addr: pc[idx(section)],
                            section,
                            kind,
                        });
                        pc[idx(section)] += unit * args.len() as u32;
                    }
                    other => return err(line, format!("unknown directive `.{other}`")),
                }
                continue;
            }

            // Instruction line.
            if section != SectionId::Text {
                return err(line, "instructions are only allowed in .text");
            }
            let (mnemonic, rest) = match text.find(char::is_whitespace) {
                Some(p) => (&text[..p], text[p..].trim()),
                None => (text, ""),
            };
            let args = parse_args(rest, line)?;
            // Build once with a dummy resolver purely for the size; the
            // 16/32-bit choice depends only on operand form, so the size
            // is stable across passes. Symbols resolve to the current pc
            // so displacement range checks cannot fire spuriously here.
            let here = pc[0];
            let probe = build_instr(mnemonic, &args, line, here, &move |_| Some(here as i64))?;
            let size = probe.size();
            items.push(Item {
                line,
                addr: pc[0],
                section,
                kind: ItemKind::Instr {
                    mnemonic: mnemonic.to_string(),
                    args,
                },
            });
            pc[0] += size;
        }

        // ---- pass 2: resolve and emit ----
        let resolve = |name: &str| symbols.get(name).map(|&(v, _)| v as i64);
        let mut text = Vec::new();
        let mut data = Vec::new();
        let mut bss_size = 0u32;
        let mut data_addr_start: Option<u32> = None;
        let mut text_addr_start: Option<u32> = None;

        for item in &items {
            match (&item.kind, item.section) {
                (ItemKind::Instr { mnemonic, args }, _) => {
                    text_addr_start.get_or_insert(item.addr);
                    let instr = build_instr(mnemonic, args, item.line, item.addr, &resolve)?;
                    encode_into(&instr, &mut text).map_err(|e| AsmError {
                        line: item.line,
                        msg: e.to_string(),
                    })?;
                }
                (ItemKind::Space(n), SectionId::Bss) => bss_size += n,
                (ItemKind::Space(n), SectionId::Data) => {
                    data_addr_start.get_or_insert(item.addr);
                    data.extend(std::iter::repeat_n(0u8, *n as usize));
                }
                (ItemKind::Space(n), SectionId::Text) => {
                    text_addr_start.get_or_insert(item.addr);
                    text.extend(std::iter::repeat_n(0u8, *n as usize));
                }
                (ItemKind::Word(v) | ItemKind::Half(v) | ItemKind::Byte(v), _) => {
                    data_addr_start.get_or_insert(item.addr);
                    let unit = match item.kind {
                        ItemKind::Word(_) => 4usize,
                        ItemKind::Half(_) => 2,
                        _ => 1,
                    };
                    for a in v {
                        let val = eval_arg(a, item.line, &resolve)?;
                        data.extend_from_slice(&(val as u32).to_le_bytes()[..unit]);
                    }
                }
            }
        }

        let mut elf = ElfFile::new(EM_TRICORE, 0);
        if !text.is_empty() {
            elf.sections.push(Section::text(
                text_addr_start.unwrap_or(self.text_base),
                text,
            ));
        }
        if !data.is_empty() {
            elf.sections.push(Section::data(
                data_addr_start.unwrap_or(self.data_base),
                data,
            ));
        }
        if bss_size > 0 {
            elf.sections.push(Section::bss(self.bss_base, bss_size));
        }
        for (name, (value, sect)) in &symbols {
            elf.symbols.push(Symbol {
                name: name.clone(),
                value: *value,
                size: 0,
                kind: if *sect == SectionId::Text {
                    SymbolKind::Func
                } else {
                    SymbolKind::Object
                },
            });
        }
        elf.symbols
            .sort_by(|a, b| a.value.cmp(&b.value).then(a.name.cmp(&b.name)));
        elf.entry = symbols
            .get("_start")
            .map(|&(v, _)| v)
            .or(text_addr_start)
            .unwrap_or(self.text_base);
        let _ = globals; // all symbols are emitted; .global is accepted for compatibility
        Ok(elf)
    }
}

fn parse_number(s: &str) -> Option<i64> {
    let s = s.trim();
    let (neg, s) = match s.strip_prefix('-') {
        Some(rest) => (true, rest),
        None => (false, s),
    };
    let v = if let Some(hex) = s.strip_prefix("0x").or_else(|| s.strip_prefix("0X")) {
        i64::from_str_radix(hex, 16).ok()?
    } else {
        s.parse::<i64>().ok()?
    };
    Some(if neg { -v } else { v })
}

fn parse_args(s: &str, line: u32) -> Result<Vec<Arg>, AsmError> {
    let s = s.trim();
    if s.is_empty() {
        return Ok(Vec::new());
    }
    // Split on top-level commas; memory operands contain no commas.
    s.split(',').map(|op| parse_arg(op.trim(), line)).collect()
}

fn parse_reg(s: &str) -> Option<Arg> {
    match s {
        "%sp" => return Some(Arg::A(AReg(10))),
        "%ra" => return Some(Arg::A(AReg(11))),
        _ => {}
    }
    let rest = s.strip_prefix('%')?;
    if let Some(n) = rest.strip_prefix('d') {
        let i: u8 = n.parse().ok()?;
        if i < 16 {
            return Some(Arg::D(DReg(i)));
        }
    }
    if let Some(n) = rest.strip_prefix('a') {
        let i: u8 = n.parse().ok()?;
        if i < 16 {
            return Some(Arg::A(AReg(i)));
        }
    }
    None
}

fn parse_arg(s: &str, line: u32) -> Result<Arg, AsmError> {
    if s.is_empty() {
        return err(line, "empty operand");
    }
    if s.starts_with('%') {
        return parse_reg(s).ok_or_else(|| AsmError {
            line,
            msg: format!("bad register `{s}`"),
        });
    }
    if let Some(rest) = s.strip_prefix('[') {
        let close = rest.find(']').ok_or_else(|| AsmError {
            line,
            msg: "missing `]` in memory operand".into(),
        })?;
        let (inner, off_str) = (&rest[..close], rest[close + 1..].trim());
        let (reg_str, postinc) = match inner.trim().strip_suffix('+') {
            Some(r) => (r.trim(), true),
            None => (inner.trim(), false),
        };
        let base = match parse_reg(reg_str) {
            Some(Arg::A(a)) => a,
            _ => return err(line, format!("bad base register `{reg_str}`")),
        };
        let off = if off_str.is_empty() {
            Arg::Imm(0)
        } else {
            parse_arg(off_str, line)?
        };
        return Ok(Arg::Mem {
            base,
            postinc,
            off: Box::new(off),
        });
    }
    for (prefix, part) in [("hi:", Part::Hi), ("lo:", Part::Lo)] {
        if let Some(rest) = s.strip_prefix(prefix) {
            return match parse_arg(rest, line)? {
                Arg::Sym { name, add, .. } => Ok(Arg::Sym { name, add, part }),
                Arg::Imm(v) => Ok(Arg::Imm(apply_part(v, part))),
                _ => err(line, format!("`{prefix}` needs a symbol or number")),
            };
        }
    }
    if let Some(v) = parse_number(s) {
        return Ok(Arg::Imm(v));
    }
    // symbol with optional +/- offset
    let (name, add) = match s.find(['+', '-']) {
        Some(p) if p > 0 => {
            let (n, rest) = s.split_at(p);
            let add = parse_number(rest).ok_or_else(|| AsmError {
                line,
                msg: format!("bad offset in `{s}`"),
            })?;
            (n.trim(), add)
        }
        _ => (s, 0),
    };
    if name.is_empty()
        || !name
            .chars()
            .all(|c| c.is_ascii_alphanumeric() || c == '_' || c == '.')
        || name.chars().next().is_some_and(|c| c.is_ascii_digit())
    {
        return err(line, format!("bad operand `{s}`"));
    }
    Ok(Arg::Sym {
        name: name.to_string(),
        add,
        part: Part::None,
    })
}

fn apply_part(v: i64, part: Part) -> i64 {
    match part {
        Part::None => v,
        Part::Hi => (((v as u32).wrapping_add(0x8000)) >> 16) as i64,
        Part::Lo => ((v as u32 & 0xffff) as u16 as i16) as i64,
    }
}

fn eval_arg(arg: &Arg, line: u32, resolve: &dyn Fn(&str) -> Option<i64>) -> Result<i64, AsmError> {
    match arg {
        Arg::Imm(v) => Ok(*v),
        Arg::Sym { name, add, part } => {
            let base = resolve(name).ok_or_else(|| AsmError {
                line,
                msg: format!("undefined symbol `{name}`"),
            })?;
            Ok(apply_part(base + add, *part))
        }
        _ => err(line, "expected an immediate or symbol"),
    }
}

/// True when the operand is a literal immediate (16-bit selection is
/// allowed to depend on its value).
fn literal(arg: &Arg) -> Option<i64> {
    match arg {
        Arg::Imm(v) => Some(*v),
        _ => None,
    }
}

fn imm_range(v: i64, lo: i64, hi: i64, line: u32, what: &str) -> Result<i64, AsmError> {
    if v < lo || v > hi {
        err(line, format!("{what} {v} out of range [{lo}, {hi}]"))
    } else {
        Ok(v)
    }
}

fn branch_disp(target: i64, pc: u32, line: u32, bits: u32) -> Result<i32, AsmError> {
    let delta = target - pc as i64;
    if delta % 2 != 0 {
        return err(line, "branch target is not halfword aligned");
    }
    let disp = delta / 2;
    let lim = 1i64 << (bits - 1);
    if disp < -lim || disp >= lim {
        return err(
            line,
            format!("branch displacement {disp} exceeds {bits} bits"),
        );
    }
    Ok(disp as i32)
}

fn n_args(args: &[Arg], n: usize, line: u32) -> Result<&[Arg], AsmError> {
    if args.len() == n {
        Ok(args)
    } else {
        err(line, format!("expected {n} operands, found {}", args.len()))
    }
}

#[allow(clippy::too_many_lines)]
fn build_instr(
    mnemonic: &str,
    args: &[Arg],
    line: u32,
    pc: u32,
    resolve: &dyn Fn(&str) -> Option<i64>,
) -> Result<Instr, AsmError> {
    let ev = |a: &Arg| eval_arg(a, line, resolve);
    let cond_of = |m: &str| match m {
        "jeq" => Some(Cond::Eq),
        "jne" => Some(Cond::Ne),
        "jlt" => Some(Cond::Lt),
        "jge" => Some(Cond::Ge),
        "jlt.u" => Some(Cond::LtU),
        "jge.u" => Some(Cond::GeU),
        _ => None,
    };
    let zcond_of = |m: &str| match m {
        "jz" => Some(Cond::Eq),
        "jnz" => Some(Cond::Ne),
        "jltz" => Some(Cond::Lt),
        "jgez" => Some(Cond::Ge),
        _ => None,
    };
    let binop_of = |m: &str| match m {
        "add" => Some(BinOp::Add),
        "sub" => Some(BinOp::Sub),
        "and" => Some(BinOp::And),
        "or" => Some(BinOp::Or),
        "xor" => Some(BinOp::Xor),
        "sll" => Some(BinOp::Sll),
        "srl" => Some(BinOp::Srl),
        "sra" => Some(BinOp::Sra),
        "mul" => Some(BinOp::Mul),
        "div" => Some(BinOp::Div),
        "rem" => Some(BinOp::Rem),
        _ => None,
    };
    let mem_of = |a: &Arg| -> Option<(AReg, bool, Arg)> {
        match a {
            Arg::Mem { base, postinc, off } => Some((*base, *postinc, (**off).clone())),
            _ => None,
        }
    };

    match mnemonic {
        "nop" => {
            n_args(args, 0, line)?;
            Ok(Instr::Nop16)
        }
        "nop32" => {
            n_args(args, 0, line)?;
            Ok(Instr::Nop)
        }
        "debug" => {
            n_args(args, 0, line)?;
            Ok(Instr::Debug16)
        }
        "ret" => {
            n_args(args, 0, line)?;
            Ok(Instr::Ret16)
        }
        "mov" => {
            let a = n_args(args, 2, line)?;
            match (&a[0], &a[1]) {
                (Arg::D(d), Arg::D(s)) => Ok(Instr::MovRR16 { d: *d, s: *s }),
                (Arg::D(d), rhs) => {
                    if let Some(v) = literal(rhs) {
                        if (-64..=63).contains(&v) {
                            return Ok(Instr::Mov16 {
                                d: *d,
                                imm7: v as i8,
                            });
                        }
                    }
                    let v = ev(rhs)?;
                    let v = imm_range(v, -32768, 65535, line, "mov immediate")?;
                    Ok(Instr::Mov {
                        d: *d,
                        imm16: v as u16 as i16,
                    })
                }
                _ => err(line, "mov needs a data-register destination"),
            }
        }
        "movh" => {
            let a = n_args(args, 2, line)?;
            let d = a[0].d(line)?;
            let v = imm_range(ev(&a[1])?, 0, 65535, line, "movh immediate")?;
            Ok(Instr::Movh { d, imm16: v as u16 })
        }
        "movh.a" => {
            let a = n_args(args, 2, line)?;
            let r = a[0].a(line)?;
            let v = imm_range(ev(&a[1])?, 0, 65535, line, "movh.a immediate")?;
            Ok(Instr::MovhA {
                a: r,
                imm16: v as u16,
            })
        }
        "mov.a" => {
            let a = n_args(args, 2, line)?;
            Ok(Instr::MovA {
                a: a[0].a(line)?,
                s: a[1].d(line)?,
            })
        }
        "mov.d" => {
            let a = n_args(args, 2, line)?;
            Ok(Instr::MovD {
                d: a[0].d(line)?,
                a: a[1].a(line)?,
            })
        }
        "mov.aa" => {
            let a = n_args(args, 2, line)?;
            Ok(Instr::MovAA {
                a: a[0].a(line)?,
                s: a[1].a(line)?,
            })
        }
        "addi" => {
            let a = n_args(args, 3, line)?;
            let v = imm_range(ev(&a[2])?, -32768, 32767, line, "addi immediate")?;
            Ok(Instr::Addi {
                d: a[0].d(line)?,
                s: a[1].d(line)?,
                imm16: v as i16,
            })
        }
        "addih" => {
            let a = n_args(args, 3, line)?;
            let v = imm_range(ev(&a[2])?, 0, 65535, line, "addih immediate")?;
            Ok(Instr::Addih {
                d: a[0].d(line)?,
                s: a[1].d(line)?,
                imm16: v as u16,
            })
        }
        "lea" => {
            let a = n_args(args, 2, line)?;
            let (base, postinc, off) = mem_of(&a[1]).ok_or_else(|| AsmError {
                line,
                msg: "lea needs a memory operand".into(),
            })?;
            if postinc {
                return err(line, "lea does not support post-increment");
            }
            let v = imm_range(
                eval_arg(&off, line, resolve)?,
                -32768,
                32767,
                line,
                "lea offset",
            )?;
            Ok(Instr::Lea {
                a: a[0].a(line)?,
                base,
                off16: v as i16,
            })
        }
        "madd" | "msub" => {
            let a = n_args(args, 4, line)?;
            let (d, acc, s1, s2) = (a[0].d(line)?, a[1].d(line)?, a[2].d(line)?, a[3].d(line)?);
            Ok(if mnemonic == "madd" {
                Instr::Madd { d, acc, s1, s2 }
            } else {
                Instr::Msub { d, acc, s1, s2 }
            })
        }
        m if binop_of(m).is_some() => {
            let op = binop_of(m).expect("guarded");
            match args.len() {
                2 => {
                    // Two-operand short forms exist for add/sub only.
                    let d = args[0].d(line)?;
                    let s = args[1].d(line)?;
                    match op {
                        BinOp::Add => Ok(Instr::Add16 { d, s }),
                        BinOp::Sub => Ok(Instr::Sub16 { d, s }),
                        _ => err(line, format!("`{m}` needs three operands")),
                    }
                }
                3 => {
                    let d = args[0].d(line)?;
                    let s1 = args[1].d(line)?;
                    match &args[2] {
                        Arg::D(s2) => Ok(Instr::Bin { op, d, s1, s2: *s2 }),
                        rhs => {
                            let v = imm_range(ev(rhs)?, -256, 255, line, "ALU immediate")?;
                            Ok(Instr::BinI {
                                op,
                                d,
                                s1,
                                imm9: v as i16,
                            })
                        }
                    }
                }
                n => err(line, format!("`{m}` takes 2 or 3 operands, found {n}")),
            }
        }
        "ld.w" | "ld.h" | "ld.hu" | "ld.b" | "ld.bu" | "ld.a" => {
            let a = n_args(args, 2, line)?;
            let (base, postinc, off) = mem_of(&a[1]).ok_or_else(|| AsmError {
                line,
                msg: "load needs a memory operand".into(),
            })?;
            let offv = imm_range(
                eval_arg(&off, line, resolve)?,
                -512,
                511,
                line,
                "load offset",
            )?;
            if mnemonic == "ld.a" {
                return Ok(Instr::LdA {
                    a: a[0].a(line)?,
                    base,
                    off10: offv as i16,
                    postinc,
                });
            }
            let d = a[0].d(line)?;
            // Short form: ld.w with a literal zero offset, no post-increment.
            if mnemonic == "ld.w" && !postinc && literal(&off) == Some(0) {
                return Ok(Instr::LdW16 { d, a: base });
            }
            let kind = match mnemonic {
                "ld.w" => LdKind::W,
                "ld.h" => LdKind::H,
                "ld.hu" => LdKind::Hu,
                "ld.b" => LdKind::B,
                _ => LdKind::Bu,
            };
            Ok(Instr::Ld {
                kind,
                d,
                base,
                off10: offv as i16,
                postinc,
            })
        }
        "st.w" | "st.h" | "st.b" | "st.a" => {
            let a = n_args(args, 2, line)?;
            let (base, postinc, off) = mem_of(&a[0]).ok_or_else(|| AsmError {
                line,
                msg: "store needs a memory operand first".into(),
            })?;
            let offv = imm_range(
                eval_arg(&off, line, resolve)?,
                -512,
                511,
                line,
                "store offset",
            )?;
            if mnemonic == "st.a" {
                return Ok(Instr::StA {
                    s: a[1].a(line)?,
                    base,
                    off10: offv as i16,
                    postinc,
                });
            }
            let s = a[1].d(line)?;
            if mnemonic == "st.w" && !postinc && literal(&off) == Some(0) {
                return Ok(Instr::StW16 { a: base, s });
            }
            let kind = match mnemonic {
                "st.w" => StKind::W,
                "st.h" => StKind::H,
                _ => StKind::B,
            };
            Ok(Instr::St {
                kind,
                s,
                base,
                off10: offv as i16,
                postinc,
            })
        }
        "j" | "jl" | "call" => {
            let a = n_args(args, 1, line)?;
            let target = ev(&a[0])?;
            let disp = branch_disp(target, pc, line, 24)?;
            Ok(if mnemonic == "j" {
                Instr::J { disp24: disp }
            } else {
                Instr::Jl { disp24: disp }
            })
        }
        "ji" => {
            let a = n_args(args, 1, line)?;
            Ok(Instr::Ji { a: a[0].a(line)? })
        }
        "jli" | "calli" => {
            let a = n_args(args, 1, line)?;
            Ok(Instr::Jli { a: a[0].a(line)? })
        }
        m if cond_of(m).is_some() => {
            let a = n_args(args, 3, line)?;
            let disp = branch_disp(ev(&a[2])?, pc, line, 16)?;
            Ok(Instr::Jcond {
                cond: cond_of(m).expect("guarded"),
                s1: a[0].d(line)?,
                s2: a[1].d(line)?,
                disp16: disp as i16,
            })
        }
        m if zcond_of(m).is_some() => {
            let a = n_args(args, 2, line)?;
            let disp = branch_disp(ev(&a[1])?, pc, line, 16)?;
            Ok(Instr::JcondZ {
                cond: zcond_of(m).expect("guarded"),
                s1: a[0].d(line)?,
                disp16: disp as i16,
            })
        }
        "loop" => {
            let a = n_args(args, 2, line)?;
            let disp = branch_disp(ev(&a[1])?, pc, line, 16)?;
            Ok(Instr::Loop {
                a: a[0].a(line)?,
                disp16: disp as i16,
            })
        }
        other => err(line, format!("unknown mnemonic `{other}`")),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::encode::decode_section;

    fn decode_text(elf: &ElfFile) -> Vec<(u32, Instr)> {
        let t = elf.section(".text").expect("text");
        decode_section(t.addr, &t.data).expect("decodes")
    }

    #[test]
    fn assembles_minimal_program() {
        let elf = assemble(".text\n_start:\n  mov %d0, 5\n  debug\n").unwrap();
        let code = decode_text(&elf);
        assert_eq!(
            code[0].1,
            Instr::Mov16 {
                d: DReg(0),
                imm7: 5
            }
        );
        assert_eq!(code[1].1, Instr::Debug16);
        assert_eq!(elf.entry, TEXT_BASE);
    }

    #[test]
    fn selects_long_mov_for_large_immediates() {
        let elf = assemble(".text\nmov %d0, 64\nmov %d1, -65\nmov %d2, 63\n").unwrap();
        let code = decode_text(&elf);
        assert_eq!(
            code[0].1,
            Instr::Mov {
                d: DReg(0),
                imm16: 64
            }
        );
        assert_eq!(
            code[1].1,
            Instr::Mov {
                d: DReg(1),
                imm16: -65
            }
        );
        assert_eq!(
            code[2].1,
            Instr::Mov16 {
                d: DReg(2),
                imm7: 63
            }
        );
    }

    #[test]
    fn hi_lo_operators_reconstruct_addresses() {
        let src = r#"
            .text
            movh.a %a2, hi:buf
            lea    %a2, [%a2]lo:buf
            debug
            .data
            .org 0xd0001234
        buf: .word 42
        "#;
        let elf = assemble(src).unwrap();
        let code = decode_text(&elf);
        let (hi, lo) = match (code[0].1, code[1].1) {
            (Instr::MovhA { imm16: h, .. }, Instr::Lea { off16: l, .. }) => (h, l),
            other => panic!("unexpected {other:?}"),
        };
        let addr = ((hi as u32) << 16).wrapping_add(lo as i32 as u32);
        assert_eq!(addr, 0xd000_1234);
    }

    #[test]
    fn branches_resolve_forward_and_backward() {
        let src = "
            .text
        top:
            addi %d0, %d0, -1
            jnz  %d0, top
            j    done
            nop
        done:
            debug
        ";
        let elf = assemble(src).unwrap();
        let code = decode_text(&elf);
        let top = code[0].0;
        let jnz_pc = code[1].0;
        match code[1].1 {
            Instr::JcondZ {
                cond: Cond::Ne,
                disp16,
                ..
            } => {
                assert_eq!(jnz_pc.wrapping_add((disp16 as i32 * 2) as u32), top);
            }
            other => panic!("unexpected {other}"),
        }
        match code[2].1 {
            Instr::J { disp24 } => {
                let target = code[2].0.wrapping_add((disp24 * 2) as u32);
                assert_eq!(target, code[4].0);
            }
            other => panic!("unexpected {other}"),
        }
    }

    #[test]
    fn data_directives_lay_out_and_symbols_resolve() {
        let src = "
            .data
        tbl: .word 1, 2, tbl
            .half 0x1234
            .byte 7, 8
            .align 4
        end: .word end
        ";
        let elf = assemble(src).unwrap();
        let d = elf.section(".data").unwrap();
        assert_eq!(d.addr, DATA_BASE);
        assert_eq!(&d.data[0..4], &1u32.to_le_bytes());
        assert_eq!(&d.data[8..12], &DATA_BASE.to_le_bytes());
        assert_eq!(&d.data[12..14], &0x1234u16.to_le_bytes());
        assert_eq!(d.data[14], 7);
        assert_eq!(d.data[15], 8);
        // `end` is aligned to 16 and stores its own address.
        assert_eq!(&d.data[16..20], &(DATA_BASE + 16).to_le_bytes());
        assert_eq!(elf.symbol("end").unwrap().value, DATA_BASE + 16);
    }

    #[test]
    fn bss_reserves_space() {
        let elf = assemble(".bss\nbuf: .space 128\n").unwrap();
        let b = elf.section(".bss").unwrap();
        assert_eq!(b.size, 128);
        assert_eq!(elf.symbol("buf").unwrap().value, BSS_BASE);
    }

    #[test]
    fn short_load_store_forms() {
        let elf = assemble(
            ".text\nld.w %d1, [%a2]\nld.w %d1, [%a2]4\nst.w [%a3], %d1\nld.w %d1, [%a2+]0\n",
        )
        .unwrap();
        let code = decode_text(&elf);
        assert_eq!(
            code[0].1,
            Instr::LdW16 {
                d: DReg(1),
                a: AReg(2)
            }
        );
        assert!(matches!(code[1].1, Instr::Ld { .. }));
        assert_eq!(
            code[2].1,
            Instr::StW16 {
                a: AReg(3),
                s: DReg(1)
            }
        );
        assert!(matches!(code[3].1, Instr::Ld { postinc: true, .. }));
    }

    #[test]
    fn errors_carry_line_numbers() {
        let e = assemble(".text\nnop\nbogus %d0\n").unwrap_err();
        assert_eq!(e.line, 3);
        assert!(e.msg.contains("bogus"));
    }

    #[test]
    fn rejects_duplicate_labels() {
        let e = assemble(".text\nx:\nnop\nx:\n").unwrap_err();
        assert!(e.msg.contains("duplicate"));
    }

    #[test]
    fn rejects_undefined_symbols() {
        let e = assemble(".text\nj nowhere\n").unwrap_err();
        assert!(e.msg.contains("undefined"));
    }

    #[test]
    fn rejects_data_in_text_and_code_in_data() {
        assert!(assemble(".text\n.word 1\n").is_err());
        assert!(assemble(".data\nnop\n").is_err());
    }

    #[test]
    fn rejects_out_of_range_immediates() {
        assert!(assemble(".text\nadd %d0, %d1, 256\n").is_err());
        assert!(assemble(".text\nld.w %d0, [%a1]512\n").is_err());
        assert!(assemble(".text\naddi %d0, %d1, 40000\n").is_err());
    }

    #[test]
    fn two_operand_add_uses_short_form() {
        let elf = assemble(".text\nadd %d1, %d2\nadd %d1, %d2, %d3\n").unwrap();
        let code = decode_text(&elf);
        assert_eq!(
            code[0].1,
            Instr::Add16 {
                d: DReg(1),
                s: DReg(2)
            }
        );
        assert_eq!(code[0].1.size(), 2);
        assert_eq!(code[1].1.size(), 4);
    }

    #[test]
    fn sp_and_ra_aliases() {
        let elf = assemble(".text\nlea %sp, [%sp]-16\nji %ra\n").unwrap();
        let code = decode_text(&elf);
        assert_eq!(
            code[0].1,
            Instr::Lea {
                a: AReg(10),
                base: AReg(10),
                off16: -16
            }
        );
        assert_eq!(code[1].1, Instr::Ji { a: AReg(11) });
    }

    #[test]
    fn entry_prefers_start_symbol() {
        let elf = assemble(".text\nnop\n_start: debug\n").unwrap();
        assert_eq!(elf.entry, TEXT_BASE + 2);
    }

    #[test]
    fn comments_and_blank_lines_ignored() {
        let elf = assemble("# header\n.text\n  nop  # trailing\n; full line\n\n debug\n").unwrap();
        assert_eq!(decode_text(&elf).len(), 2);
    }

    #[test]
    fn symbol_plus_offset() {
        let src =
            ".text\nmovh.a %a0, hi:arr+8\nlea %a0, [%a0]lo:arr+8\ndebug\n.data\narr: .space 16\n";
        let elf = assemble(src).unwrap();
        let code = decode_text(&elf);
        let (hi, lo) = match (code[0].1, code[1].1) {
            (Instr::MovhA { imm16: h, .. }, Instr::Lea { off16: l, .. }) => (h, l),
            other => panic!("unexpected {other:?}"),
        };
        assert_eq!(
            ((hi as u32) << 16).wrapping_add(lo as i32 as u32),
            DATA_BASE + 8
        );
    }
}

//! Instruction set of the TriCore-like source processor.
//!
//! The ISA mirrors the traits of the real TriCore that matter for the
//! paper's translation problem: two register banks (data `D` and address
//! `A`), mixed 16/32-bit instruction lengths (so instruction addresses are
//! halfword-aligned and cache analysis must reason about real byte
//! layouts), compare-and-branch instructions instead of condition flags,
//! post-increment addressing, a multiply-accumulate instruction and a
//! zero-overhead loop instruction.

use std::fmt;

/// A data register `D0..D15`.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct DReg(pub u8);

/// An address register `A0..A15`. `A10` is the stack pointer, `A11` the
/// return-address register.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct AReg(pub u8);

/// Stack pointer alias.
pub const SP: AReg = AReg(10);
/// Return-address register alias.
pub const RA: AReg = AReg(11);

impl DReg {
    /// Creates a data register, panicking on indices above 15.
    ///
    /// # Panics
    ///
    /// Panics if `i > 15`.
    pub fn new(i: u8) -> Self {
        assert!(i < 16, "data register index out of range");
        DReg(i)
    }
}

impl AReg {
    /// Creates an address register, panicking on indices above 15.
    ///
    /// # Panics
    ///
    /// Panics if `i > 15`.
    pub fn new(i: u8) -> Self {
        assert!(i < 16, "address register index out of range");
        AReg(i)
    }
}

impl fmt::Display for DReg {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "%d{}", self.0)
    }
}

impl fmt::Display for AReg {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "%a{}", self.0)
    }
}

/// Two-operand ALU operation selector.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum BinOp {
    /// Wrapping addition.
    Add,
    /// Wrapping subtraction.
    Sub,
    /// Bitwise and.
    And,
    /// Bitwise or.
    Or,
    /// Bitwise xor.
    Xor,
    /// Logical shift left (by low 5 bits of the second operand).
    Sll,
    /// Logical shift right.
    Srl,
    /// Arithmetic shift right.
    Sra,
    /// 32×32→32 wrapping multiply.
    Mul,
    /// Signed division (division by zero yields 0).
    Div,
    /// Signed remainder (remainder by zero yields 0).
    Rem,
}

impl BinOp {
    /// Applies the operation to two 32-bit values.
    pub fn apply(self, a: u32, b: u32) -> u32 {
        match self {
            BinOp::Add => a.wrapping_add(b),
            BinOp::Sub => a.wrapping_sub(b),
            BinOp::And => a & b,
            BinOp::Or => a | b,
            BinOp::Xor => a ^ b,
            BinOp::Sll => a.wrapping_shl(b & 31),
            BinOp::Srl => a.wrapping_shr(b & 31),
            BinOp::Sra => ((a as i32).wrapping_shr(b & 31)) as u32,
            BinOp::Mul => a.wrapping_mul(b),
            BinOp::Div => {
                if b == 0 {
                    0
                } else {
                    (a as i32).wrapping_div(b as i32) as u32
                }
            }
            BinOp::Rem => {
                if b == 0 {
                    0
                } else {
                    (a as i32).wrapping_rem(b as i32) as u32
                }
            }
        }
    }

    fn mnemonic(self) -> &'static str {
        match self {
            BinOp::Add => "add",
            BinOp::Sub => "sub",
            BinOp::And => "and",
            BinOp::Or => "or",
            BinOp::Xor => "xor",
            BinOp::Sll => "sll",
            BinOp::Srl => "srl",
            BinOp::Sra => "sra",
            BinOp::Mul => "mul",
            BinOp::Div => "div",
            BinOp::Rem => "rem",
        }
    }
}

/// Condition of a compare-and-branch instruction.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Cond {
    /// Equal.
    Eq,
    /// Not equal.
    Ne,
    /// Signed less-than.
    Lt,
    /// Signed greater-or-equal.
    Ge,
    /// Unsigned less-than.
    LtU,
    /// Unsigned greater-or-equal.
    GeU,
}

impl Cond {
    /// Evaluates the condition on two register values.
    pub fn eval(self, a: u32, b: u32) -> bool {
        match self {
            Cond::Eq => a == b,
            Cond::Ne => a != b,
            Cond::Lt => (a as i32) < (b as i32),
            Cond::Ge => (a as i32) >= (b as i32),
            Cond::LtU => a < b,
            Cond::GeU => a >= b,
        }
    }

    fn mnemonic(self) -> &'static str {
        match self {
            Cond::Eq => "jeq",
            Cond::Ne => "jne",
            Cond::Lt => "jlt",
            Cond::Ge => "jge",
            Cond::LtU => "jlt.u",
            Cond::GeU => "jge.u",
        }
    }

    fn z_mnemonic(self) -> &'static str {
        match self {
            Cond::Eq => "jz",
            Cond::Ne => "jnz",
            Cond::Lt => "jltz",
            Cond::Ge => "jgez",
            Cond::LtU => "jltz.u",
            Cond::GeU => "jgez.u",
        }
    }
}

/// Width/signedness selector for loads.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum LdKind {
    /// `ld.b` — byte, sign-extended.
    B,
    /// `ld.bu` — byte, zero-extended.
    Bu,
    /// `ld.h` — halfword, sign-extended.
    H,
    /// `ld.hu` — halfword, zero-extended.
    Hu,
    /// `ld.w` — word.
    W,
}

impl LdKind {
    fn suffix(self) -> &'static str {
        match self {
            LdKind::B => "b",
            LdKind::Bu => "bu",
            LdKind::H => "h",
            LdKind::Hu => "hu",
            LdKind::W => "w",
        }
    }
}

/// Width selector for stores.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum StKind {
    /// `st.b` — low byte.
    B,
    /// `st.h` — low halfword.
    H,
    /// `st.w` — word.
    W,
}

impl StKind {
    fn suffix(self) -> &'static str {
        match self {
            StKind::B => "b",
            StKind::H => "h",
            StKind::W => "w",
        }
    }
}

/// One source-processor instruction.
///
/// Displacements of control-transfer instructions are in halfwords
/// relative to the address of the instruction itself (`target = pc +
/// 2*disp`), as on the real TriCore.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
// Every variant carries its own doc line; the allow covers only the
// payload fields, whose names follow the ISA operand convention
// (`d`/`s`/`a`/`base` registers, `imm*`/`off*`/`disp*` immediates).
#[allow(missing_docs)]
pub enum Instr {
    // ---- 16-bit encodings ----
    /// No operation (16-bit).
    Nop16,
    /// Halt the processor and report to the debug interface (16-bit).
    Debug16,
    /// Return: jump to `A11` (16-bit).
    Ret16,
    /// `mov %dX, imm7` (16-bit, sign-extended).
    Mov16 { d: DReg, imm7: i8 },
    /// `mov %dX, %dY` (16-bit).
    MovRR16 { d: DReg, s: DReg },
    /// `add %dX, %dY` — `dX += dY` (16-bit).
    Add16 { d: DReg, s: DReg },
    /// `sub %dX, %dY` — `dX -= dY` (16-bit).
    Sub16 { d: DReg, s: DReg },
    /// `ld.w %dX, [%aY]` (16-bit, zero offset).
    LdW16 { d: DReg, a: AReg },
    /// `st.w [%aY], %dX` (16-bit, zero offset).
    StW16 { a: AReg, s: DReg },

    // ---- 32-bit encodings ----
    /// `mov %dX, imm16` (sign-extended).
    Mov { d: DReg, imm16: i16 },
    /// `movh %dX, imm16` — `dX = imm16 << 16`.
    Movh { d: DReg, imm16: u16 },
    /// `movh.a %aX, imm16` — `aX = imm16 << 16`.
    MovhA { a: AReg, imm16: u16 },
    /// `addi %dX, %dY, imm16` (sign-extended addend).
    Addi { d: DReg, s: DReg, imm16: i16 },
    /// `addih %dX, %dY, imm16` — `dX = dY + (imm16 << 16)`.
    Addih { d: DReg, s: DReg, imm16: u16 },
    /// `mov %dX, %dY` (32-bit form).
    MovRR { d: DReg, s: DReg },
    /// `mov.a %aX, %dY`.
    MovA { a: AReg, s: DReg },
    /// `mov.d %dX, %aY`.
    MovD { d: DReg, a: AReg },
    /// `mov.aa %aX, %aY`.
    MovAA { a: AReg, s: AReg },
    /// `lea %aX, [%aY]off16` — `aX = aY + sext(off16)`.
    Lea { a: AReg, base: AReg, off16: i16 },
    /// Three-register ALU operation.
    Bin {
        op: BinOp,
        d: DReg,
        s1: DReg,
        s2: DReg,
    },
    /// Register-immediate ALU operation (9-bit signed immediate).
    BinI {
        op: BinOp,
        d: DReg,
        s1: DReg,
        imm9: i16,
    },
    /// `madd %dX, %dA, %dY, %dZ` — `dX = dA + dY*dZ`.
    Madd {
        d: DReg,
        acc: DReg,
        s1: DReg,
        s2: DReg,
    },
    /// `msub %dX, %dA, %dY, %dZ` — `dX = dA - dY*dZ`.
    Msub {
        d: DReg,
        acc: DReg,
        s1: DReg,
        s2: DReg,
    },
    /// Load into a data register.
    Ld {
        kind: LdKind,
        d: DReg,
        base: AReg,
        off10: i16,
        postinc: bool,
    },
    /// Load into an address register (`ld.a`).
    LdA {
        a: AReg,
        base: AReg,
        off10: i16,
        postinc: bool,
    },
    /// Store from a data register.
    St {
        kind: StKind,
        s: DReg,
        base: AReg,
        off10: i16,
        postinc: bool,
    },
    /// Store from an address register (`st.a`).
    StA {
        s: AReg,
        base: AReg,
        off10: i16,
        postinc: bool,
    },
    /// Unconditional jump, 24-bit halfword displacement.
    J { disp24: i32 },
    /// Jump-and-link (call): `A11 = next pc`, 24-bit displacement.
    Jl { disp24: i32 },
    /// Indirect jump through an address register.
    Ji { a: AReg },
    /// Indirect jump-and-link through an address register.
    Jli { a: AReg },
    /// Compare-and-branch on two data registers (16-bit displacement).
    Jcond {
        cond: Cond,
        s1: DReg,
        s2: DReg,
        disp16: i16,
    },
    /// Compare-and-branch against zero (16-bit displacement).
    JcondZ { cond: Cond, s1: DReg, disp16: i16 },
    /// Zero-overhead loop: `aX -= 1; if aX != 0 jump` (16-bit displacement).
    Loop { a: AReg, disp16: i16 },
    /// No operation (32-bit).
    Nop,
}

impl Instr {
    /// Encoded size in bytes (2 or 4).
    pub fn size(&self) -> u32 {
        match self {
            Instr::Nop16
            | Instr::Debug16
            | Instr::Ret16
            | Instr::Mov16 { .. }
            | Instr::MovRR16 { .. }
            | Instr::Add16 { .. }
            | Instr::Sub16 { .. }
            | Instr::LdW16 { .. }
            | Instr::StW16 { .. } => 2,
            _ => 4,
        }
    }

    /// True for any instruction that may redirect control flow.
    pub fn is_control(&self) -> bool {
        matches!(
            self,
            Instr::Ret16
                | Instr::J { .. }
                | Instr::Jl { .. }
                | Instr::Ji { .. }
                | Instr::Jli { .. }
                | Instr::Jcond { .. }
                | Instr::JcondZ { .. }
                | Instr::Loop { .. }
                | Instr::Debug16
        )
    }

    /// True for conditional control flow (the targets of the paper's
    /// branch-prediction correction code).
    pub fn is_conditional(&self) -> bool {
        matches!(
            self,
            Instr::Jcond { .. } | Instr::JcondZ { .. } | Instr::Loop { .. }
        )
    }

    /// Control-flow role of this instruction for the shared block
    /// layer — the ONE classifier both the translator's CFG and the
    /// block-compiled engine partition with, so their block structures
    /// cannot drift. `target` is the caller-resolved unit index of the
    /// direct target (`None` when the destination is outside the
    /// decoded table); it is only read for direct transfers.
    pub fn unit_flow(&self, target: Option<u32>) -> cabt_exec::blocks::UnitFlow {
        use cabt_exec::blocks::UnitFlow;
        match self {
            Instr::Debug16 => UnitFlow::Halt,
            Instr::J { .. } | Instr::Jl { .. } => UnitFlow::Jump { target },
            Instr::Jcond { .. } | Instr::JcondZ { .. } | Instr::Loop { .. } => {
                UnitFlow::Branch { target }
            }
            Instr::Ret16 | Instr::Ji { .. } | Instr::Jli { .. } => UnitFlow::Indirect,
            _ => UnitFlow::Straight,
        }
    }

    /// Branch target for direct control transfers, given the address of
    /// this instruction. `None` for indirect jumps and non-branches.
    pub fn target(&self, pc: u32) -> Option<u32> {
        let rel = |d: i32| pc.wrapping_add((d as u32).wrapping_mul(2));
        match *self {
            Instr::J { disp24 } | Instr::Jl { disp24 } => Some(rel(disp24)),
            Instr::Jcond { disp16, .. }
            | Instr::JcondZ { disp16, .. }
            | Instr::Loop { disp16, .. } => Some(rel(disp16 as i32)),
            _ => None,
        }
    }

    /// Registers read by this instruction, as timing-model indices
    /// (`0..16` = D bank, `16..32` = A bank). Used for hazard detection
    /// by both the golden model and the static cycle calculator.
    pub fn reads(&self) -> Vec<u8> {
        let d = |r: DReg| r.0;
        let a = |r: AReg| r.0 + 16;
        match *self {
            Instr::MovRR16 { s, .. } | Instr::MovRR { s, .. } | Instr::MovA { s, .. } => {
                vec![d(s)]
            }
            Instr::Add16 { d: dd, s } | Instr::Sub16 { d: dd, s } => vec![d(dd), d(s)],
            Instr::LdW16 { a: base, .. } => vec![a(base)],
            Instr::StW16 { a: base, s } => vec![a(base), d(s)],
            Instr::Addi { s, .. } | Instr::Addih { s, .. } => vec![d(s)],
            Instr::MovD { a: s, .. } | Instr::MovAA { s, .. } => vec![a(s)],
            Instr::Lea { base, .. } => vec![a(base)],
            Instr::Bin { s1, s2, .. } => vec![d(s1), d(s2)],
            Instr::BinI { s1, .. } => vec![d(s1)],
            Instr::Madd { acc, s1, s2, .. } | Instr::Msub { acc, s1, s2, .. } => {
                vec![d(acc), d(s1), d(s2)]
            }
            Instr::Ld { base, .. } | Instr::LdA { base, .. } => vec![a(base)],
            Instr::St { s, base, .. } => vec![d(s), a(base)],
            Instr::StA { s, base, .. } => vec![a(s), a(base)],
            Instr::Ji { a: r } | Instr::Jli { a: r } => vec![a(r)],
            Instr::Jcond { s1, s2, .. } => vec![d(s1), d(s2)],
            Instr::JcondZ { s1, .. } => vec![d(s1)],
            Instr::Loop { a: r, .. } => vec![a(r)],
            Instr::Ret16 => vec![a(RA)],
            _ => vec![],
        }
    }

    /// Registers written by this instruction (same index space as
    /// [`Instr::reads`]).
    pub fn writes(&self) -> Vec<u8> {
        let d = |r: DReg| r.0;
        let a = |r: AReg| r.0 + 16;
        match *self {
            Instr::Mov16 { d: dd, .. }
            | Instr::MovRR16 { d: dd, .. }
            | Instr::Add16 { d: dd, .. }
            | Instr::Sub16 { d: dd, .. }
            | Instr::LdW16 { d: dd, .. }
            | Instr::Mov { d: dd, .. }
            | Instr::Movh { d: dd, .. }
            | Instr::Addi { d: dd, .. }
            | Instr::Addih { d: dd, .. }
            | Instr::MovRR { d: dd, .. }
            | Instr::MovD { d: dd, .. }
            | Instr::Bin { d: dd, .. }
            | Instr::BinI { d: dd, .. }
            | Instr::Madd { d: dd, .. }
            | Instr::Msub { d: dd, .. } => vec![d(dd)],
            Instr::MovhA { a: aa, .. }
            | Instr::MovA { a: aa, .. }
            | Instr::MovAA { a: aa, .. }
            | Instr::Lea { a: aa, .. }
            | Instr::LdA { a: aa, .. } => vec![a(aa)],
            Instr::Ld {
                d: dd,
                base,
                postinc,
                ..
            } => {
                if postinc {
                    vec![d(dd), a(base)]
                } else {
                    vec![d(dd)]
                }
            }
            Instr::St { base, postinc, .. } | Instr::StA { base, postinc, .. } => {
                if postinc {
                    vec![a(base)]
                } else {
                    vec![]
                }
            }
            Instr::Jl { .. } | Instr::Jli { .. } => vec![a(RA)],
            Instr::Loop { a: r, .. } => vec![a(r)],
            _ => vec![],
        }
    }
}

impl fmt::Display for Instr {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let pi = |p: bool| if p { "+" } else { "" };
        match *self {
            Instr::Nop16 => write!(f, "nop16"),
            Instr::Debug16 => write!(f, "debug"),
            Instr::Ret16 => write!(f, "ret"),
            Instr::Mov16 { d, imm7 } => write!(f, "mov {d}, {imm7}"),
            Instr::MovRR16 { d, s } => write!(f, "mov {d}, {s}"),
            Instr::Add16 { d, s } => write!(f, "add {d}, {s}"),
            Instr::Sub16 { d, s } => write!(f, "sub {d}, {s}"),
            Instr::LdW16 { d, a } => write!(f, "ld.w {d}, [{a}]"),
            Instr::StW16 { a, s } => write!(f, "st.w [{a}], {s}"),
            Instr::Mov { d, imm16 } => write!(f, "mov {d}, {imm16}"),
            Instr::Movh { d, imm16 } => write!(f, "movh {d}, {imm16:#x}"),
            Instr::MovhA { a, imm16 } => write!(f, "movh.a {a}, {imm16:#x}"),
            Instr::Addi { d, s, imm16 } => write!(f, "addi {d}, {s}, {imm16}"),
            Instr::Addih { d, s, imm16 } => write!(f, "addih {d}, {s}, {imm16:#x}"),
            Instr::MovRR { d, s } => write!(f, "mov {d}, {s}"),
            Instr::MovA { a, s } => write!(f, "mov.a {a}, {s}"),
            Instr::MovD { d, a } => write!(f, "mov.d {d}, {a}"),
            Instr::MovAA { a, s } => write!(f, "mov.aa {a}, {s}"),
            Instr::Lea { a, base, off16 } => write!(f, "lea {a}, [{base}]{off16}"),
            Instr::Bin { op, d, s1, s2 } => write!(f, "{} {d}, {s1}, {s2}", op.mnemonic()),
            Instr::BinI { op, d, s1, imm9 } => write!(f, "{} {d}, {s1}, {imm9}", op.mnemonic()),
            Instr::Madd { d, acc, s1, s2 } => write!(f, "madd {d}, {acc}, {s1}, {s2}"),
            Instr::Msub { d, acc, s1, s2 } => write!(f, "msub {d}, {acc}, {s1}, {s2}"),
            Instr::Ld {
                kind,
                d,
                base,
                off10,
                postinc,
            } => {
                write!(
                    f,
                    "ld.{} {d}, [{base}{}]{off10}",
                    kind.suffix(),
                    pi(postinc)
                )
            }
            Instr::LdA {
                a,
                base,
                off10,
                postinc,
            } => {
                write!(f, "ld.a {a}, [{base}{}]{off10}", pi(postinc))
            }
            Instr::St {
                kind,
                s,
                base,
                off10,
                postinc,
            } => {
                write!(
                    f,
                    "st.{} [{base}{}]{off10}, {s}",
                    kind.suffix(),
                    pi(postinc)
                )
            }
            Instr::StA {
                s,
                base,
                off10,
                postinc,
            } => {
                write!(f, "st.a [{base}{}]{off10}, {s}", pi(postinc))
            }
            Instr::J { disp24 } => write!(f, "j {:+}", disp24 * 2),
            Instr::Jl { disp24 } => write!(f, "jl {:+}", disp24 * 2),
            Instr::Ji { a } => write!(f, "ji {a}"),
            Instr::Jli { a } => write!(f, "jli {a}"),
            Instr::Jcond {
                cond,
                s1,
                s2,
                disp16,
            } => {
                write!(f, "{} {s1}, {s2}, {:+}", cond.mnemonic(), disp16 as i32 * 2)
            }
            Instr::JcondZ { cond, s1, disp16 } => {
                write!(f, "{} {s1}, {:+}", cond.z_mnemonic(), disp16 as i32 * 2)
            }
            Instr::Loop { a, disp16 } => write!(f, "loop {a}, {:+}", disp16 as i32 * 2),
            Instr::Nop => write!(f, "nop"),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn binop_semantics() {
        assert_eq!(BinOp::Add.apply(u32::MAX, 1), 0);
        assert_eq!(BinOp::Sub.apply(0, 1), u32::MAX);
        assert_eq!(BinOp::Sra.apply(0x8000_0000, 31), u32::MAX);
        assert_eq!(BinOp::Srl.apply(0x8000_0000, 31), 1);
        assert_eq!(
            BinOp::Sll.apply(1, 33),
            2,
            "shift amount is masked to 5 bits"
        );
        assert_eq!(BinOp::Div.apply((-7i32) as u32, 2), (-3i32) as u32);
        assert_eq!(BinOp::Div.apply(5, 0), 0);
        assert_eq!(BinOp::Rem.apply((-7i32) as u32, 2), (-1i32) as u32);
        assert_eq!(BinOp::Rem.apply(5, 0), 0);
        assert_eq!(BinOp::Mul.apply(0x1_0000, 0x1_0000), 0);
    }

    #[test]
    fn cond_semantics() {
        assert!(Cond::Eq.eval(3, 3));
        assert!(Cond::Ne.eval(3, 4));
        assert!(Cond::Lt.eval((-1i32) as u32, 0));
        assert!(!Cond::LtU.eval((-1i32) as u32, 0));
        assert!(Cond::Ge.eval(0, (-1i32) as u32));
        assert!(Cond::GeU.eval((-1i32) as u32, 5));
    }

    #[test]
    fn sizes() {
        assert_eq!(Instr::Nop16.size(), 2);
        assert_eq!(Instr::Ret16.size(), 2);
        assert_eq!(
            Instr::Mov {
                d: DReg(0),
                imm16: 0
            }
            .size(),
            4
        );
        assert_eq!(Instr::J { disp24: 0 }.size(), 4);
    }

    #[test]
    fn branch_targets_are_halfword_relative() {
        let j = Instr::J { disp24: 3 };
        assert_eq!(j.target(0x8000_0000), Some(0x8000_0006));
        let b = Instr::Jcond {
            cond: Cond::Eq,
            s1: DReg(0),
            s2: DReg(1),
            disp16: -2,
        };
        assert_eq!(b.target(0x8000_0010), Some(0x8000_000c));
        assert_eq!(Instr::Ji { a: AReg(0) }.target(0), None);
        assert_eq!(Instr::Nop.target(0), None);
    }

    #[test]
    fn reads_writes_track_postincrement() {
        let ld = Instr::Ld {
            kind: LdKind::W,
            d: DReg(1),
            base: AReg(2),
            off10: 4,
            postinc: true,
        };
        assert!(ld.writes().contains(&1));
        assert!(ld.writes().contains(&18));
        let st = Instr::St {
            kind: StKind::W,
            s: DReg(1),
            base: AReg(2),
            off10: 4,
            postinc: false,
        };
        assert!(st.writes().is_empty());
        assert!(st.reads().contains(&1));
        assert!(st.reads().contains(&18));
    }

    #[test]
    fn call_writes_link_register() {
        assert_eq!(Instr::Jl { disp24: 0 }.writes(), vec![16 + 11]);
        assert_eq!(Instr::Ret16.reads(), vec![16 + 11]);
    }

    #[test]
    fn control_classification() {
        assert!(Instr::J { disp24: 0 }.is_control());
        assert!(!Instr::J { disp24: 0 }.is_conditional());
        assert!(Instr::Loop {
            a: AReg(3),
            disp16: -4
        }
        .is_conditional());
        assert!(Instr::Debug16.is_control());
        assert!(!Instr::Nop.is_control());
    }

    #[test]
    #[should_panic]
    fn dreg_range_checked() {
        DReg::new(16);
    }

    #[test]
    fn display_forms() {
        let i = Instr::Ld {
            kind: LdKind::W,
            d: DReg(4),
            base: AReg(2),
            off10: 4,
            postinc: true,
        };
        assert_eq!(i.to_string(), "ld.w %d4, [%a2+]4");
        let i = Instr::Madd {
            d: DReg(0),
            acc: DReg(1),
            s1: DReg(2),
            s2: DReg(3),
        };
        assert_eq!(i.to_string(), "madd %d0, %d1, %d2, %d3");
    }
}

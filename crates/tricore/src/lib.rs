//! TriCore-like source processor model for CABT.
//!
//! The paper translates Infineon TriCore object code, measuring its
//! reference timing on a TriCore TC10GP evaluation board. We do not have
//! that silicon, so this crate provides the complete substitute:
//!
//! * [`isa`] — a TriCore-flavoured 32-bit embedded ISA with mixed
//!   16/32-bit instruction encodings, separate data (`D0..D15`) and
//!   address (`A0..A15`) register banks, post-increment addressing,
//!   multiply-accumulate and a zero-overhead `loop` instruction.
//! * [`encode`] — the binary encoder/decoder for that ISA.
//! * [`asm`] — a two-pass assembler producing genuine ELF32 images
//!   ([`cabt_isa::elf::ElfFile`]); this stands in for the C compiler the
//!   paper used to produce TriCore object code.
//! * [`arch`] — the machine-readable architecture description (pipelines,
//!   latencies, branch predictor, instruction cache) that the paper keeps
//!   in an XML file and feeds to both the reference model and the
//!   translator's static cycle calculator.
//! * [`sim`] — the cycle-accurate interpretive golden model: a dual-issue
//!   pipeline with static BTFN branch prediction and a set-associative
//!   instruction cache. Its cycle counts play the role of the evaluation
//!   board's measured counts in every experiment.
//!
//! # Example
//!
//! ```
//! use cabt_tricore::{asm::assemble, sim::Simulator};
//!
//! let elf = assemble(
//!     r#"
//!     .text
//!     .global _start
//! _start:
//!     mov   %d2, 0
//!     mov   %d1, 10
//! again:
//!     add   %d2, %d2, %d1
//!     addi  %d1, %d1, -1
//!     jnz   %d1, again
//!     debug
//! "#,
//! )?;
//! let mut sim = Simulator::new(&elf)?;
//! let result = sim.run(1_000_000)?;
//! assert_eq!(sim.cpu.d(2), 55); // 10+9+...+1
//! assert!(result.cycles > result.instructions); // pipeline effects cost cycles
//! # Ok::<(), Box<dyn std::error::Error>>(())
//! ```

pub mod analyze;
pub mod arch;
pub mod asm;
pub(crate) mod compiled;
pub mod encode;
pub mod isa;
pub mod sim;

pub use arch::{ArchDesc, CacheConfig, Timing};
pub use asm::{assemble, AsmError};
pub use isa::{AReg, BinOp, Cond, DReg, Instr, LdKind, StKind};
pub use sim::{RunExit, RunStats, Simulator};

//! The closure-compiled dispatch core of the golden model — the
//! paper's compiled-simulation thesis applied to our own interpreter.
//!
//! At load time every basic block of the pre-decoded table is *fused*
//! into a run of specialized closures: each instruction's operands,
//! I-cache line span, timing record and operand sets are captured as
//! constants, so executing an instruction is one indirect call into a
//! body with no decode match, no table-entry copy and no per-step
//! dispatch-cache maintenance. Block structure comes from the shared
//! [`cabt_exec::blocks::BlockMap`] (the same partition the translator's
//! CFG uses); dispatch is *block-threaded*: a step enters a block,
//! runs its straight-line ops to the terminator, and the terminator
//! returns where control goes — the successor indices are chased
//! through the flat block table exactly like the pre-decoded core
//! chases instruction indices.
//!
//! Bit-identity with the pre-decoded core is a design constraint, not
//! an accident: every closure performs the *same sequence* of cache
//! accesses, timing-model calls (`step_pre` is stateful — pairing,
//! operand scoreboards — and must run per instruction) and statistic
//! updates the pre-decoded step performs, and memory faults unwind
//! with the program counter parked on the faulting instruction. What
//! the compiler exploits is what is *statically known per block*:
//!
//! * the retirement counter (`RunStats::instructions`) is added once
//!   per block exit (reconstructed on the fault path), and `run_until`
//!   budget checks happen per *block* — block boundaries are the only
//!   stop points of this core (documented on
//!   [`DispatchMode::Compiled`](crate::sim::DispatchMode));
//! * fetch line *runs* are proved at build time: an op whose first
//!   line is the line the previous op just touched takes the
//!   guaranteed-hit path ([`CacheSim::repeat_hit`]), and lead accesses
//!   probe the MRU way first ([`CacheSim::access_mru_first`]) — both
//!   counter- and LRU-identical to the full search;
//! * each instruction's issue class is pinned as a const generic, so
//!   the timing model's class dispatch folds away inside the closure
//!   ([`TimingModel::step_pre_class`]).
//!
//! Mid-block entries (an indirect jump computed into the middle of a
//! block, or a debugger-forced pc) fall back to the pre-decoded
//! interpreter until dispatch lands back on a block leader, since the
//! fused prologues assume in-order execution from the leader.

use crate::arch::{CacheConfig, CacheSim, IssueClass, PreTiming, TimingModel, TimingState};
use crate::isa::{Instr, LdKind, StKind, RA};
use crate::sim::{
    route_load, route_store, Cpu, IoDevice, PreInstr, RunExitKind, RunStats, SimError, NO_IDX,
};
use cabt_exec::blocks::{BlockMap, UnitFlow};
use cabt_exec::trace::TracePlan;
use cabt_isa::mem::Memory;

/// Where control goes after an op closure.
#[derive(Debug, Clone, Copy)]
pub(crate) enum Ctl {
    /// Straight-line op inside the block: continue with the next op.
    Next,
    /// Block exit through the fall-through edge.
    Fall,
    /// Block exit through the direct-target edge.
    Taken,
    /// Block exit to a computed address.
    Indirect(u32),
}

/// The mutable half of the simulator an op closure executes against —
/// a reborrow of the engine's own fields, split so the closure table
/// (borrowed shared) and the state (borrowed mutably) never alias.
pub(crate) struct Hot<'a> {
    pub cpu: &'a mut Cpu,
    pub mem: &'a mut Memory,
    pub io: &'a mut Option<Box<dyn IoDevice>>,
    pub tstate: &'a mut TimingState,
    pub cache: &'a mut Option<CacheSim>,
    pub cache_cfg: CacheConfig,
    pub model: &'a TimingModel,
    pub stats: &'a mut RunStats,
    pub halted: &'a mut bool,
}

impl Hot<'_> {
    /// Instruction-cache accounting over a line span of *lead*
    /// accesses (full tag search per line) — byte-for-byte the
    /// pre-decoded core's fetch prologue.
    #[inline]
    fn icache(&mut self, line_first: u32, line_last: u32) {
        if let Some(cache) = self.cache.as_mut() {
            let mut line = line_first;
            loop {
                self.stats.icache_accesses += 1;
                if !cache.access_mru_first(line) {
                    self.stats.icache_misses += 1;
                    self.stats.stall_cycles += self.cache_cfg.miss_penalty as u64;
                    self.tstate.stall(self.cache_cfg.miss_penalty as u64);
                }
                if line == line_last {
                    break;
                }
                line += self.cache_cfg.line_bytes;
            }
        }
    }

    /// Per-op fetch accounting with the block compiler's static
    /// line-run knowledge: when the op's first line is the line the
    /// previous op in the block just touched (`m.first_repeat`,
    /// proved at closure-build time), that access is a guaranteed
    /// MRU hit — only the counters move ([`CacheSim::repeat_hit`]) —
    /// and any further lines of the span get full lead accesses.
    /// Valid because block execution always enters at offset 0 and
    /// runs the ops in order within one dispatch.
    #[inline]
    fn icache_op(&mut self, m: &Meta) {
        if self.cache.is_none() {
            return;
        }
        if m.first_repeat {
            self.stats.icache_accesses += 1;
            if let Some(cache) = self.cache.as_mut() {
                cache.repeat_hit();
            }
            if m.line_last != m.line_first {
                self.icache(m.line_first + self.cache_cfg.line_bytes, m.line_last);
            }
        } else {
            self.icache(m.line_first, m.line_last);
        }
    }

    #[inline]
    fn load(&mut self, addr: u32, kind: LdKind) -> Result<u32, SimError> {
        route_load(self.mem, self.io, self.tstate, addr, kind)
    }

    #[inline]
    fn store(&mut self, addr: u32, kind: StKind, value: u32) -> Result<(), SimError> {
        route_store(self.mem, self.io, self.tstate, addr, kind, value)
    }

    /// Effective address with optional post-increment (mirrors
    /// `Simulator::ea`; `off` is the sign-extended offset).
    #[inline]
    fn ea(&mut self, base: u8, off: u32, postinc: bool) -> u32 {
        let b = self.cpu.a(base);
        if postinc {
            self.cpu.set_a(base, b.wrapping_add(off));
            b
        } else {
            b.wrapping_add(off)
        }
    }
}

/// One fused instruction: fetch accounting + semantics + timing in a
/// single specialized body behind one indirect call.
pub(crate) type OpFn = Box<dyn Fn(&mut Hot<'_>) -> Result<Ctl, SimError> + Send>;

/// One compiled basic block: its op run plus the terminator's resolved
/// exits (instruction-table indices, like the pre-decoded entries, so
/// the dispatch-cache `cur` keeps working unchanged).
pub(crate) struct CompiledBlock {
    pub ops: Box<[OpFn]>,
    /// Source pc of each op — the fault path parks `cpu.pc` here.
    pub pcs: Box<[u32]>,
    /// Instruction-table index of the first op.
    pub first: u32,
    /// Architectural fall-through exit (pc past the terminator).
    pub fall_pc: u32,
    /// Table index of the fall-through exit (`NO_IDX` off-image).
    pub fall_unit: u32,
    /// Direct-target exit.
    pub target_pc: u32,
    /// Table index of the direct-target exit.
    pub taken_unit: u32,
    /// The terminating instruction (what a completed step reports).
    pub term: Instr,
}

/// The compiled program: the shared block partition plus one fused
/// closure run per block, parallel to `map.blocks`.
pub(crate) struct CompiledProgram {
    pub map: BlockMap,
    pub blocks: Vec<CompiledBlock>,
}

/// The edge a trace seam expects control to leave through — the static
/// half of the side-exit guard ([`Ctl::Next`]/[`Ctl::Fall`] match a
/// `Fall` seam, [`Ctl::Taken`] a `Taken` seam, and [`Ctl::Indirect`]
/// never matches).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub(crate) enum TraceCont {
    /// Continue through the fall-through edge.
    Fall,
    /// Continue through the direct-target edge.
    Taken,
}

/// One block of a fused trace: the block's op run (recompiled with
/// trace-wide line-run knowledge) plus the terminator's resolved exits
/// — the side-exit targets when the guard fails — and the seam guard
/// into the next segment.
pub(crate) struct TraceSeg {
    /// Fused ops. The *first* op's fetch prologue may carry a seam
    /// proof: inside a trace, control reaches segment `i + 1` only
    /// through segment `i`'s terminator, so the line that terminator
    /// ended on is a build-time fact — exactly the within-block
    /// line-run argument of [`Hot::icache_op`], extended across block
    /// seams.
    pub ops: Box<[OpFn]>,
    /// The same ops compiled *without* their fetch prologues, for the
    /// batched-fetch fast path: when every line in [`TraceSeg::lines`]
    /// is MRU-resident ([`CacheSim::mru_resident`]), each per-op access
    /// would be a pure hit with no tag/LRU movement, so the executor
    /// runs these and applies [`TraceSeg::accesses`] in one add after
    /// the segment completes — bit-identical, order-free accounting.
    /// (A same-line MRU hit is also exactly what the back-edge seam
    /// proof of [`CompiledTrace::loop_head_ops`] specializes, so the
    /// fast path needs no separate loop-head variant.)
    pub lean_ops: Box<[OpFn]>,
    /// Distinct fetch lines the segment touches, in fetch order —
    /// the residency guard of the batched-fetch fast path.
    pub lines: Box<[u32]>,
    /// Total instruction-cache accesses of one full segment execution.
    pub accesses: u32,
    /// Accesses performed by ops `0..=i` (fetch precedes execute, so a
    /// fault at op `i` has fetched exactly this many lines) — the
    /// batched path's fault reconstruction, mirroring how retirement
    /// is reconstructed.
    pub acc_prefix: Box<[u32]>,
    /// Source pc of each op (fault parking, as in [`CompiledBlock`]).
    pub pcs: Box<[u32]>,
    /// Instruction-table index of the first op.
    pub first: u32,
    /// Architectural fall-through exit of the terminator.
    pub fall_pc: u32,
    /// Table index of the fall-through exit (`NO_IDX` off-image).
    pub fall_unit: u32,
    /// Direct-target exit.
    pub target_pc: u32,
    /// Table index of the direct-target exit.
    pub taken_unit: u32,
    /// The terminating instruction (what a completed step reports).
    pub term: Instr,
    /// The edge that continues the trace into the next segment
    /// (`None` on the final segment — the loop back edge, when there is
    /// one, lives on [`CompiledTrace::loop_cont`]).
    pub cont: Option<TraceCont>,
}

/// One fused superblock of the golden model's trace tier: segments in
/// execution order, plus the loop-trace specialization when the
/// selected chain closes back on its head.
pub(crate) struct CompiledTrace {
    pub segs: Box<[TraceSeg]>,
    /// The selected chain this trace was compiled from, kept for the
    /// static/dynamic cross-checks (the analyzer re-verifies every
    /// formed plan's side exits against the block map).
    pub plan: TracePlan,
    /// For loop traces: the edge of the *last* segment that re-enters
    /// the head; the executor iterates in place while it matches.
    pub loop_cont: Option<TraceCont>,
    /// Loop-head specialization: the head segment's ops recompiled with
    /// the back-edge seam proved (on iterations ≥ 2 the previous
    /// dynamic instruction is the last segment's terminator, so its
    /// fetch line is a build-time fact too). Iteration 1 keeps the
    /// unproved `segs[0].ops` — control may enter the trace from
    /// anywhere.
    pub loop_head_ops: Option<Box<[OpFn]>>,
    /// Union of every segment's fetch lines — the whole-trace residency
    /// guard, checked *once* per trace step: while it holds, no op of
    /// any segment can move cache state, so it keeps holding through
    /// loop iterations and the executor batches all fetch accounting
    /// for the step into one add.
    pub lines: Box<[u32]>,
}

/// Compiles a selected superblock ([`cabt_exec::trace::grow`]) into its
/// fused form. Segments reuse [`compile_op`] — every op performs the
/// exact per-instruction work of the block-compiled core, so trace
/// dispatch stays bit-identical — but the line-run analysis now spans
/// the whole chain: `prev_line` carries across seams, because a seam is
/// only crossed after the guard confirmed control left through the
/// expected edge, and on *both* edge kinds the previous dynamic fetch
/// is the terminator's last line.
pub(crate) fn compile_trace(
    table: &[PreInstr],
    map: &BlockMap,
    plan: &TracePlan,
    line_bytes: u32,
) -> CompiledTrace {
    let compile_span =
        |first: u32, end: u32, last: u32, mut prev_line: Option<u32>, fetch: bool| {
            (first..end)
                .map(|u| {
                    let pi = &table[u as usize];
                    let first_repeat = prev_line == Some(pi.line_first);
                    prev_line = Some(pi.line_last);
                    compile_op(pi, u == last, first_repeat, fetch)
                })
                .collect::<Box<[OpFn]>>()
        };
    let mut prev_line: Option<u32> = None;
    let segs: Box<[TraceSeg]> = plan
        .blocks
        .iter()
        .enumerate()
        .map(|(si, &b)| {
            let span = &map.blocks[b as usize];
            let last = span.last();
            let ops = compile_span(span.first, span.end(), last, prev_line, true);
            let lean_ops = compile_span(span.first, span.end(), last, None, false);
            prev_line = Some(table[last as usize].line_last);
            let pcs: Box<[u32]> = (span.first..span.end())
                .map(|u| table[u as usize].pc)
                .collect();
            // Static fetch plan of the segment: the distinct lines in
            // fetch order (pcs ascend within a block, so consecutive
            // dedup suffices) and the per-op cumulative access counts
            // the batched fast path applies.
            let mut lines: Vec<u32> = Vec::new();
            let mut accesses = 0u32;
            let acc_prefix: Box<[u32]> = (span.first..span.end())
                .map(|u| {
                    let pi = &table[u as usize];
                    let mut line = pi.line_first;
                    loop {
                        if lines.last() != Some(&line) {
                            lines.push(line);
                        }
                        accesses += 1;
                        if line == pi.line_last {
                            break;
                        }
                        line += line_bytes;
                    }
                    accesses
                })
                .collect();
            let t = &table[last as usize];
            TraceSeg {
                ops,
                lean_ops,
                lines: lines.into_boxed_slice(),
                accesses,
                acc_prefix,
                pcs,
                first: span.first,
                fall_pc: t.fall_pc,
                fall_unit: t.fall,
                target_pc: t.target_pc,
                taken_unit: t.target,
                term: t.instr,
                cont: plan.via_taken.get(si).map(|&taken| {
                    if taken {
                        TraceCont::Taken
                    } else {
                        TraceCont::Fall
                    }
                }),
            }
        })
        .collect();
    let loop_cont = plan.loop_back.then_some(if plan.loop_via_taken {
        TraceCont::Taken
    } else {
        TraceCont::Fall
    });
    let loop_head_ops = plan.loop_back.then(|| {
        // prev_line currently holds the final segment's terminator line
        // — the instruction the back edge is taken from.
        let span = &map.blocks[plan.blocks[0] as usize];
        compile_span(span.first, span.end(), span.last(), prev_line, true)
    });
    let mut lines: Vec<u32> = segs.iter().flat_map(|s| s.lines.iter().copied()).collect();
    lines.sort_unstable();
    lines.dedup();
    CompiledTrace {
        segs,
        plan: plan.clone(),
        loop_cont,
        loop_head_ops,
        lines: lines.into_boxed_slice(),
    }
}

/// The control-flow role the block builder needs, derived from a
/// pre-decoded entry — the shared [`Instr::unit_flow`] classifier, so
/// the engine's partition matches the translator's by construction.
fn flow_of(pi: &PreInstr) -> UnitFlow {
    pi.instr
        .unit_flow((pi.target != NO_IDX).then_some(pi.target))
}

/// Compiles the whole pre-decoded table into fused blocks. `entry` is
/// the table index of the program entry (an extra block leader).
pub(crate) fn compile(table: &[PreInstr], entry: u32) -> CompiledProgram {
    let units: Vec<UnitFlow> = table.iter().map(flow_of).collect();
    let contiguous = |i: usize| table[i].fall == i as u32 + 1;
    let entries = (entry != NO_IDX).then_some(entry);
    let map = BlockMap::build(&units, contiguous, entries, false);
    let blocks = map
        .blocks
        .iter()
        .map(|span| {
            let last = span.last();
            // Static line-run analysis: an op whose first fetch line is
            // the line the previous op in the block ended on repeats a
            // just-touched line — a guaranteed hit, proved here once
            // instead of searched for at every execution.
            let mut prev_line: Option<u32> = None;
            let ops: Box<[OpFn]> = (span.first..span.end())
                .map(|u| {
                    let pi = &table[u as usize];
                    let first_repeat = prev_line == Some(pi.line_first);
                    prev_line = Some(pi.line_last);
                    compile_op(pi, u == last, first_repeat, true)
                })
                .collect();
            let pcs: Box<[u32]> = (span.first..span.end())
                .map(|u| table[u as usize].pc)
                .collect();
            let t = &table[last as usize];
            CompiledBlock {
                ops,
                pcs,
                first: span.first,
                fall_pc: t.fall_pc,
                fall_unit: t.fall,
                target_pc: t.target_pc,
                taken_unit: t.target,
                term: t.instr,
            }
        })
        .collect();
    CompiledProgram { map, blocks }
}

/// Everything the fused prologue/epilogue needs, captured by value.
#[derive(Clone, Copy)]
struct Meta {
    line_first: u32,
    line_last: u32,
    /// The op's first line repeats the previous op's last line (static
    /// line-run analysis — see [`Hot::icache_op`]).
    first_repeat: bool,
    /// Whether the fused op carries its fetch prologue. `false` only
    /// for a trace segment's lean variant, whose fetch accounting the
    /// trace executor batches per segment (const-dispatched so the
    /// prologue folds out of the closure entirely).
    fetch: bool,
    timing: PreTiming,
    reads: [u8; 3],
    nreads: u8,
    writes: [u8; 2],
    nwrites: u8,
}

impl Meta {
    fn of(pi: &PreInstr, first_repeat: bool, fetch: bool) -> Meta {
        Meta {
            line_first: pi.line_first,
            line_last: pi.line_last,
            first_repeat,
            fetch,
            timing: pi.timing,
            reads: pi.reads,
            nreads: pi.nreads,
            writes: pi.writes,
            nwrites: pi.nwrites,
        }
    }
}

/// Dispatches a fuse constructor to the const-class-specialized
/// monomorphization (the instruction's issue class is a build-time
/// constant, so the timing model's class branches fold away inside
/// the closure).
macro_rules! by_class {
    ($ctor:ident, $m:expr, $($arg:expr),+) => {
        match ($m.timing.class, $m.fetch) {
            (IssueClass::Ip, true) => $ctor::<false, false, true, _>($m, $($arg),+),
            (IssueClass::Ls, true) => $ctor::<true, false, true, _>($m, $($arg),+),
            (IssueClass::Br, true) => $ctor::<false, true, true, _>($m, $($arg),+),
            (IssueClass::Ip, false) => $ctor::<false, false, false, _>($m, $($arg),+),
            (IssueClass::Ls, false) => $ctor::<true, false, false, _>($m, $($arg),+),
            (IssueClass::Br, false) => $ctor::<false, true, false, _>($m, $($arg),+),
        }
    };
}

/// Fuses a non-conditional op: fetch accounting, the specialized body,
/// the timing-model step (dyn-taken `Some(true)`, as the pre-decoded
/// core passes for non-conditionals), then the fixed exit.
fn fuse<F>(m: Meta, exit: Ctl, body: F) -> OpFn
where
    F: Fn(&mut Hot<'_>) -> Result<(), SimError> + Send + 'static,
{
    by_class!(fuse_class, m, exit, body)
}

fn fuse_class<const IS_LS: bool, const IS_BR: bool, const FETCH: bool, F>(
    m: Meta,
    exit: Ctl,
    body: F,
) -> OpFn
where
    F: Fn(&mut Hot<'_>) -> Result<(), SimError> + Send + 'static,
{
    Box::new(move |h| {
        if FETCH {
            h.icache_op(&m);
        }
        body(h)?;
        h.model.step_pre_class::<IS_LS, IS_BR>(
            h.tstate,
            &m.timing,
            Some(true),
            &m.reads[..m.nreads as usize],
            &m.writes[..m.nwrites as usize],
        );
        Ok(exit)
    })
}

/// Fuses a conditional terminator: the body reports the dynamic
/// direction, which feeds the timing model and the branch statistics —
/// the compiled form of `finish_step`.
fn fuse_cond<F>(m: Meta, body: F) -> OpFn
where
    F: Fn(&mut Hot<'_>) -> bool + Send + 'static,
{
    by_class!(fuse_cond_class, m, body)
}

fn fuse_cond_class<const IS_LS: bool, const IS_BR: bool, const FETCH: bool, F>(
    m: Meta,
    body: F,
) -> OpFn
where
    F: Fn(&mut Hot<'_>) -> bool + Send + 'static,
{
    Box::new(move |h| {
        if FETCH {
            h.icache_op(&m);
        }
        let t = body(h);
        h.model.step_pre_class::<IS_LS, IS_BR>(
            h.tstate,
            &m.timing,
            Some(t),
            &m.reads[..m.nreads as usize],
            &m.writes[..m.nwrites as usize],
        );
        h.stats.cond_branches += 1;
        if t {
            h.stats.taken += 1;
        }
        if m.timing.predicts_taken != Some(t) {
            h.stats.mispredicted += 1;
        }
        Ok(if t { Ctl::Taken } else { Ctl::Fall })
    })
}

/// Fuses an indirect terminator: the body computes the destination.
fn fuse_indirect<F>(m: Meta, body: F) -> OpFn
where
    F: Fn(&mut Hot<'_>) -> u32 + Send + 'static,
{
    by_class!(fuse_indirect_class, m, body)
}

fn fuse_indirect_class<const IS_LS: bool, const IS_BR: bool, const FETCH: bool, F>(
    m: Meta,
    body: F,
) -> OpFn
where
    F: Fn(&mut Hot<'_>) -> u32 + Send + 'static,
{
    Box::new(move |h| {
        if FETCH {
            h.icache_op(&m);
        }
        let a = body(h);
        h.model.step_pre_class::<IS_LS, IS_BR>(
            h.tstate,
            &m.timing,
            Some(true),
            &m.reads[..m.nreads as usize],
            &m.writes[..m.nwrites as usize],
        );
        Ok(Ctl::Indirect(a))
    })
}

/// Compiles one instruction into its fused closure. `terminator` marks
/// the block's last op — straight-line ops inside the block continue
/// with [`Ctl::Next`], the same op in terminator position exits with
/// [`Ctl::Fall`]. `first_repeat` is the static line-run fact for the
/// fetch prologue.
fn compile_op(pi: &PreInstr, terminator: bool, first_repeat: bool, fetch: bool) -> OpFn {
    let m = Meta::of(pi, first_repeat, fetch);
    // Exit of a non-control op, decided by block position.
    let next = if terminator { Ctl::Fall } else { Ctl::Next };
    let fall_pc = pi.fall_pc;
    match pi.instr {
        Instr::Nop16 | Instr::Nop => fuse(m, next, |_| Ok(())),
        Instr::Debug16 => fuse(m, Ctl::Fall, |h| {
            *h.halted = true;
            h.stats.exit = Some(RunExitKind::Halted);
            Ok(())
        }),
        Instr::Ret16 => fuse_indirect(m, |h| h.cpu.a(RA.0)),
        Instr::Mov16 { d, imm7 } => {
            let v = imm7 as i32 as u32;
            fuse(m, next, move |h| {
                h.cpu.set_d(d.0, v);
                Ok(())
            })
        }
        Instr::MovRR16 { d, s } => fuse(m, next, move |h| {
            h.cpu.set_d(d.0, h.cpu.d(s.0));
            Ok(())
        }),
        Instr::Add16 { d, s } => fuse(m, next, move |h| {
            h.cpu.set_d(d.0, h.cpu.d(d.0).wrapping_add(h.cpu.d(s.0)));
            Ok(())
        }),
        Instr::Sub16 { d, s } => fuse(m, next, move |h| {
            h.cpu.set_d(d.0, h.cpu.d(d.0).wrapping_sub(h.cpu.d(s.0)));
            Ok(())
        }),
        Instr::LdW16 { d, a } => fuse(m, next, move |h| {
            let addr = h.cpu.a(a.0);
            let v = h.load(addr, LdKind::W)?;
            h.cpu.set_d(d.0, v);
            Ok(())
        }),
        Instr::StW16 { a, s } => fuse(m, next, move |h| {
            let addr = h.cpu.a(a.0);
            h.store(addr, StKind::W, h.cpu.d(s.0))
        }),
        Instr::Mov { d, imm16 } => {
            let v = imm16 as i32 as u32;
            fuse(m, next, move |h| {
                h.cpu.set_d(d.0, v);
                Ok(())
            })
        }
        Instr::Movh { d, imm16 } => {
            let v = (imm16 as u32) << 16;
            fuse(m, next, move |h| {
                h.cpu.set_d(d.0, v);
                Ok(())
            })
        }
        Instr::MovhA { a, imm16 } => {
            let v = (imm16 as u32) << 16;
            fuse(m, next, move |h| {
                h.cpu.set_a(a.0, v);
                Ok(())
            })
        }
        Instr::Addi { d, s, imm16 } => {
            let v = imm16 as i32 as u32;
            fuse(m, next, move |h| {
                h.cpu.set_d(d.0, h.cpu.d(s.0).wrapping_add(v));
                Ok(())
            })
        }
        Instr::Addih { d, s, imm16 } => {
            let v = (imm16 as u32) << 16;
            fuse(m, next, move |h| {
                h.cpu.set_d(d.0, h.cpu.d(s.0).wrapping_add(v));
                Ok(())
            })
        }
        Instr::MovRR { d, s } => fuse(m, next, move |h| {
            h.cpu.set_d(d.0, h.cpu.d(s.0));
            Ok(())
        }),
        Instr::MovA { a, s } => fuse(m, next, move |h| {
            h.cpu.set_a(a.0, h.cpu.d(s.0));
            Ok(())
        }),
        Instr::MovD { d, a } => fuse(m, next, move |h| {
            h.cpu.set_d(d.0, h.cpu.a(a.0));
            Ok(())
        }),
        Instr::MovAA { a, s } => fuse(m, next, move |h| {
            h.cpu.set_a(a.0, h.cpu.a(s.0));
            Ok(())
        }),
        Instr::Lea { a, base, off16 } => {
            let off = off16 as i32 as u32;
            fuse(m, next, move |h| {
                h.cpu.set_a(a.0, h.cpu.a(base.0).wrapping_add(off));
                Ok(())
            })
        }
        Instr::Bin { op, d, s1, s2 } => fuse(m, next, move |h| {
            h.cpu.set_d(d.0, op.apply(h.cpu.d(s1.0), h.cpu.d(s2.0)));
            Ok(())
        }),
        Instr::BinI { op, d, s1, imm9 } => {
            let v = imm9 as i32 as u32;
            fuse(m, next, move |h| {
                h.cpu.set_d(d.0, op.apply(h.cpu.d(s1.0), v));
                Ok(())
            })
        }
        Instr::Madd { d, acc, s1, s2 } => fuse(m, next, move |h| {
            let v = h
                .cpu
                .d(acc.0)
                .wrapping_add(h.cpu.d(s1.0).wrapping_mul(h.cpu.d(s2.0)));
            h.cpu.set_d(d.0, v);
            Ok(())
        }),
        Instr::Msub { d, acc, s1, s2 } => fuse(m, next, move |h| {
            let v = h
                .cpu
                .d(acc.0)
                .wrapping_sub(h.cpu.d(s1.0).wrapping_mul(h.cpu.d(s2.0)));
            h.cpu.set_d(d.0, v);
            Ok(())
        }),
        Instr::Ld {
            kind,
            d,
            base,
            off10,
            postinc,
        } => {
            let off = off10 as i32 as u32;
            fuse(m, next, move |h| {
                let addr = h.ea(base.0, off, postinc);
                let v = h.load(addr, kind)?;
                h.cpu.set_d(d.0, v);
                Ok(())
            })
        }
        Instr::LdA {
            a,
            base,
            off10,
            postinc,
        } => {
            let off = off10 as i32 as u32;
            fuse(m, next, move |h| {
                let addr = h.ea(base.0, off, postinc);
                let v = h.load(addr, LdKind::W)?;
                h.cpu.set_a(a.0, v);
                Ok(())
            })
        }
        Instr::St {
            kind,
            s,
            base,
            off10,
            postinc,
        } => {
            let off = off10 as i32 as u32;
            fuse(m, next, move |h| {
                let addr = h.ea(base.0, off, postinc);
                h.store(addr, kind, h.cpu.d(s.0))
            })
        }
        Instr::StA {
            s,
            base,
            off10,
            postinc,
        } => {
            let off = off10 as i32 as u32;
            fuse(m, next, move |h| {
                let addr = h.ea(base.0, off, postinc);
                h.store(addr, StKind::W, h.cpu.a(s.0))
            })
        }
        Instr::J { .. } => fuse(m, Ctl::Taken, |_| Ok(())),
        Instr::Jl { .. } => fuse(m, Ctl::Taken, move |h| {
            h.cpu.set_a(RA.0, fall_pc);
            Ok(())
        }),
        Instr::Ji { a } => fuse_indirect(m, move |h| h.cpu.a(a.0)),
        Instr::Jli { a } => fuse_indirect(m, move |h| {
            let t = h.cpu.a(a.0);
            h.cpu.set_a(RA.0, fall_pc);
            t
        }),
        Instr::Jcond { cond, s1, s2, .. } => {
            fuse_cond(m, move |h| cond.eval(h.cpu.d(s1.0), h.cpu.d(s2.0)))
        }
        Instr::JcondZ { cond, s1, .. } => fuse_cond(m, move |h| cond.eval(h.cpu.d(s1.0), 0)),
        Instr::Loop { a, .. } => fuse_cond(m, move |h| {
            let v = h.cpu.a(a.0).wrapping_sub(1);
            h.cpu.set_a(a.0, v);
            v != 0
        }),
    }
}

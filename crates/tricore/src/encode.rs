//! Binary encoder/decoder for the source ISA.
//!
//! Instructions are a little-endian halfword stream. Bit 0 of the first
//! halfword selects the length: `0` → 16-bit instruction, `1` → 32-bit
//! instruction (as on the real TriCore, where the least significant
//! opcode bit distinguishes short and long formats).
//!
//! 16-bit layout: `op4` in bits `[4:1]`, `ra` in `[8:5]`, `rb` in
//! `[12:9]`; `mov16` replaces `rb` with a 7-bit signed immediate in
//! `[15:9]`.
//!
//! 32-bit layout: `op7` in bits `[7:1]`, `r1` in `[11:8]`, `r2` in
//! `[15:12]`, `r3` in `[19:16]`, `acc` in `[23:20]`, and the wide
//! immediate field in `[31:16]` (`imm16`/`off16`/`disp16`), `[24:16]`
//! (`imm9`), `[25:16]` + post-increment bit 26 (`off10`), or `[31:8]`
//! (`disp24`).

use crate::isa::{AReg, BinOp, Cond, DReg, Instr, LdKind, StKind};
use cabt_isa::{bits, sign_extend};
use std::fmt;

/// Error produced when an instruction's fields do not fit its encoding.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct EncodeError {
    /// The offending instruction, rendered.
    pub instr: String,
    /// Which field was out of range.
    pub field: &'static str,
}

impl fmt::Display for EncodeError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "field {} out of range in `{}`", self.field, self.instr)
    }
}

impl std::error::Error for EncodeError {}

/// Error produced when a halfword stream does not decode.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct DecodeError {
    /// The first halfword of the undecodable instruction.
    pub halfword: u16,
}

impl fmt::Display for DecodeError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "illegal instruction halfword {:#06x}", self.halfword)
    }
}

impl std::error::Error for DecodeError {}

const BINOPS: [BinOp; 11] = [
    BinOp::Add,
    BinOp::Sub,
    BinOp::And,
    BinOp::Or,
    BinOp::Xor,
    BinOp::Sll,
    BinOp::Srl,
    BinOp::Sra,
    BinOp::Mul,
    BinOp::Div,
    BinOp::Rem,
];

const CONDS: [Cond; 6] = [Cond::Eq, Cond::Ne, Cond::Lt, Cond::Ge, Cond::LtU, Cond::GeU];

fn binop_index(op: BinOp) -> u32 {
    BINOPS
        .iter()
        .position(|&o| o == op)
        .expect("all binops listed") as u32
}

fn cond_index(c: Cond) -> u32 {
    CONDS
        .iter()
        .position(|&o| o == c)
        .expect("all conds listed") as u32
}

fn check(ok: bool, instr: &Instr, field: &'static str) -> Result<(), EncodeError> {
    if ok {
        Ok(())
    } else {
        Err(EncodeError {
            instr: instr.to_string(),
            field,
        })
    }
}

/// Encodes `instr` and appends its bytes (little-endian halfwords) to `out`.
///
/// # Errors
///
/// Returns [`EncodeError`] when an immediate or displacement does not fit
/// its field (e.g. a `disp24` beyond ±2^23 halfwords).
pub fn encode_into(instr: &Instr, out: &mut Vec<u8>) -> Result<(), EncodeError> {
    let h16 = |op: u32, ra: u32, rb: u32| -> u16 { ((op << 1) | (ra << 5) | (rb << 9)) as u16 };
    let push16 = |out: &mut Vec<u8>, h: u16| out.extend_from_slice(&h.to_le_bytes());
    let push32 = |out: &mut Vec<u8>, w: u32| out.extend_from_slice(&w.to_le_bytes());
    let w32 = |op: u32, r1: u32, r2: u32, rest: u32| -> u32 {
        1 | (op << 1) | (r1 << 8) | (r2 << 12) | rest
    };

    match *instr {
        Instr::Nop16 => push16(out, h16(0, 0, 0)),
        Instr::Debug16 => push16(out, h16(1, 0, 0)),
        Instr::Ret16 => push16(out, h16(2, 0, 0)),
        Instr::Mov16 { d, imm7 } => {
            check((-64..=63).contains(&imm7), instr, "imm7")?;
            push16(out, h16(3, d.0 as u32, 0) | (((imm7 as u16) & 0x7f) << 9));
        }
        Instr::MovRR16 { d, s } => push16(out, h16(4, d.0 as u32, s.0 as u32)),
        Instr::Add16 { d, s } => push16(out, h16(5, d.0 as u32, s.0 as u32)),
        Instr::Sub16 { d, s } => push16(out, h16(6, d.0 as u32, s.0 as u32)),
        Instr::LdW16 { d, a } => push16(out, h16(7, d.0 as u32, a.0 as u32)),
        Instr::StW16 { a, s } => push16(out, h16(8, s.0 as u32, a.0 as u32)),

        Instr::Mov { d, imm16 } => {
            push32(out, w32(1, d.0 as u32, 0, ((imm16 as u16) as u32) << 16));
        }
        Instr::Movh { d, imm16 } => push32(out, w32(2, d.0 as u32, 0, (imm16 as u32) << 16)),
        Instr::MovhA { a, imm16 } => push32(out, w32(3, a.0 as u32, 0, (imm16 as u32) << 16)),
        Instr::Addi { d, s, imm16 } => push32(
            out,
            w32(4, d.0 as u32, s.0 as u32, ((imm16 as u16) as u32) << 16),
        ),
        Instr::Addih { d, s, imm16 } => {
            push32(out, w32(5, d.0 as u32, s.0 as u32, (imm16 as u32) << 16));
        }
        Instr::MovRR { d, s } => push32(out, w32(6, d.0 as u32, s.0 as u32, 0)),
        Instr::MovA { a, s } => push32(out, w32(7, a.0 as u32, s.0 as u32, 0)),
        Instr::MovD { d, a } => push32(out, w32(8, d.0 as u32, a.0 as u32, 0)),
        Instr::MovAA { a, s } => push32(out, w32(9, a.0 as u32, s.0 as u32, 0)),
        Instr::Lea { a, base, off16 } => push32(
            out,
            w32(10, a.0 as u32, base.0 as u32, ((off16 as u16) as u32) << 16),
        ),
        Instr::Bin { op, d, s1, s2 } => push32(
            out,
            w32(
                11 + binop_index(op),
                d.0 as u32,
                s1.0 as u32,
                (s2.0 as u32) << 16,
            ),
        ),
        Instr::BinI { op, d, s1, imm9 } => {
            check((-256..=255).contains(&imm9), instr, "imm9")?;
            push32(
                out,
                w32(
                    22 + binop_index(op),
                    d.0 as u32,
                    s1.0 as u32,
                    ((imm9 as u32) & 0x1ff) << 16,
                ),
            );
        }
        Instr::Madd { d, acc, s1, s2 } => push32(
            out,
            w32(
                33,
                d.0 as u32,
                s1.0 as u32,
                ((s2.0 as u32) << 16) | ((acc.0 as u32) << 20),
            ),
        ),
        Instr::Msub { d, acc, s1, s2 } => push32(
            out,
            w32(
                34,
                d.0 as u32,
                s1.0 as u32,
                ((s2.0 as u32) << 16) | ((acc.0 as u32) << 20),
            ),
        ),
        Instr::Ld {
            kind,
            d,
            base,
            off10,
            postinc,
        } => {
            check((-512..=511).contains(&off10), instr, "off10")?;
            let opc = match kind {
                LdKind::B => 35,
                LdKind::Bu => 36,
                LdKind::H => 37,
                LdKind::Hu => 38,
                LdKind::W => 39,
            };
            let rest = (((off10 as u32) & 0x3ff) << 16) | ((postinc as u32) << 26);
            push32(out, w32(opc, d.0 as u32, base.0 as u32, rest));
        }
        Instr::LdA {
            a,
            base,
            off10,
            postinc,
        } => {
            check((-512..=511).contains(&off10), instr, "off10")?;
            let rest = (((off10 as u32) & 0x3ff) << 16) | ((postinc as u32) << 26);
            push32(out, w32(40, a.0 as u32, base.0 as u32, rest));
        }
        Instr::St {
            kind,
            s,
            base,
            off10,
            postinc,
        } => {
            check((-512..=511).contains(&off10), instr, "off10")?;
            let opc = match kind {
                StKind::B => 41,
                StKind::H => 42,
                StKind::W => 43,
            };
            let rest = (((off10 as u32) & 0x3ff) << 16) | ((postinc as u32) << 26);
            push32(out, w32(opc, s.0 as u32, base.0 as u32, rest));
        }
        Instr::StA {
            s,
            base,
            off10,
            postinc,
        } => {
            check((-512..=511).contains(&off10), instr, "off10")?;
            let rest = (((off10 as u32) & 0x3ff) << 16) | ((postinc as u32) << 26);
            push32(out, w32(44, s.0 as u32, base.0 as u32, rest));
        }
        Instr::J { disp24 } => {
            check((-(1 << 23)..(1 << 23)).contains(&disp24), instr, "disp24")?;
            push32(out, 1 | (45 << 1) | (((disp24 as u32) & 0xff_ffff) << 8));
        }
        Instr::Jl { disp24 } => {
            check((-(1 << 23)..(1 << 23)).contains(&disp24), instr, "disp24")?;
            push32(out, 1 | (46 << 1) | (((disp24 as u32) & 0xff_ffff) << 8));
        }
        Instr::Ji { a } => push32(out, w32(47, a.0 as u32, 0, 0)),
        Instr::Jli { a } => push32(out, w32(48, a.0 as u32, 0, 0)),
        Instr::Jcond {
            cond,
            s1,
            s2,
            disp16,
        } => push32(
            out,
            w32(
                49 + cond_index(cond),
                s1.0 as u32,
                s2.0 as u32,
                ((disp16 as u16) as u32) << 16,
            ),
        ),
        Instr::JcondZ { cond, s1, disp16 } => push32(
            out,
            w32(
                55 + cond_index(cond),
                s1.0 as u32,
                0,
                ((disp16 as u16) as u32) << 16,
            ),
        ),
        Instr::Loop { a, disp16 } => {
            push32(out, w32(61, a.0 as u32, 0, ((disp16 as u16) as u32) << 16));
        }
        Instr::Nop => push32(out, w32(62, 0, 0, 0)),
    }
    Ok(())
}

/// Encodes a single instruction into a fresh byte vector.
///
/// # Errors
///
/// Same as [`encode_into`].
pub fn encode(instr: &Instr) -> Result<Vec<u8>, EncodeError> {
    let mut v = Vec::with_capacity(4);
    encode_into(instr, &mut v)?;
    Ok(v)
}

/// Decodes one instruction from two halfwords (`hi` is ignored for
/// 16-bit instructions). Returns the instruction and its size in bytes.
///
/// # Errors
///
/// Returns [`DecodeError`] for unallocated opcodes.
pub fn decode(lo: u16, hi: u16) -> Result<(Instr, u32), DecodeError> {
    if lo & 1 == 0 {
        let op = bits(lo as u32, 4, 1);
        let ra = bits(lo as u32, 8, 5) as u8;
        let rb = bits(lo as u32, 12, 9) as u8;
        let instr = match op {
            0 => Instr::Nop16,
            1 => Instr::Debug16,
            2 => Instr::Ret16,
            3 => Instr::Mov16 {
                d: DReg(ra),
                imm7: sign_extend(bits(lo as u32, 15, 9), 7) as i8,
            },
            4 => Instr::MovRR16 {
                d: DReg(ra),
                s: DReg(rb),
            },
            5 => Instr::Add16 {
                d: DReg(ra),
                s: DReg(rb),
            },
            6 => Instr::Sub16 {
                d: DReg(ra),
                s: DReg(rb),
            },
            7 => Instr::LdW16 {
                d: DReg(ra),
                a: AReg(rb),
            },
            8 => Instr::StW16 {
                a: AReg(rb),
                s: DReg(ra),
            },
            _ => return Err(DecodeError { halfword: lo }),
        };
        return Ok((instr, 2));
    }

    let w = (lo as u32) | ((hi as u32) << 16);
    let op = bits(w, 7, 1);
    let r1 = bits(w, 11, 8) as u8;
    let r2 = bits(w, 15, 12) as u8;
    let r3 = bits(w, 19, 16) as u8;
    let acc = bits(w, 23, 20) as u8;
    let imm16u = bits(w, 31, 16) as u16;
    let imm16s = imm16u as i16;
    let imm9 = sign_extend(bits(w, 24, 16), 9) as i16;
    let off10 = sign_extend(bits(w, 25, 16), 10) as i16;
    let postinc = bits(w, 26, 26) != 0;
    let disp24 = sign_extend(bits(w, 31, 8), 24);

    let instr = match op {
        1 => Instr::Mov {
            d: DReg(r1),
            imm16: imm16s,
        },
        2 => Instr::Movh {
            d: DReg(r1),
            imm16: imm16u,
        },
        3 => Instr::MovhA {
            a: AReg(r1),
            imm16: imm16u,
        },
        4 => Instr::Addi {
            d: DReg(r1),
            s: DReg(r2),
            imm16: imm16s,
        },
        5 => Instr::Addih {
            d: DReg(r1),
            s: DReg(r2),
            imm16: imm16u,
        },
        6 => Instr::MovRR {
            d: DReg(r1),
            s: DReg(r2),
        },
        7 => Instr::MovA {
            a: AReg(r1),
            s: DReg(r2),
        },
        8 => Instr::MovD {
            d: DReg(r1),
            a: AReg(r2),
        },
        9 => Instr::MovAA {
            a: AReg(r1),
            s: AReg(r2),
        },
        10 => Instr::Lea {
            a: AReg(r1),
            base: AReg(r2),
            off16: imm16s,
        },
        11..=21 => Instr::Bin {
            op: BINOPS[(op - 11) as usize],
            d: DReg(r1),
            s1: DReg(r2),
            s2: DReg(r3),
        },
        22..=32 => Instr::BinI {
            op: BINOPS[(op - 22) as usize],
            d: DReg(r1),
            s1: DReg(r2),
            imm9,
        },
        33 => Instr::Madd {
            d: DReg(r1),
            acc: DReg(acc),
            s1: DReg(r2),
            s2: DReg(r3),
        },
        34 => Instr::Msub {
            d: DReg(r1),
            acc: DReg(acc),
            s1: DReg(r2),
            s2: DReg(r3),
        },
        35 => Instr::Ld {
            kind: LdKind::B,
            d: DReg(r1),
            base: AReg(r2),
            off10,
            postinc,
        },
        36 => Instr::Ld {
            kind: LdKind::Bu,
            d: DReg(r1),
            base: AReg(r2),
            off10,
            postinc,
        },
        37 => Instr::Ld {
            kind: LdKind::H,
            d: DReg(r1),
            base: AReg(r2),
            off10,
            postinc,
        },
        38 => Instr::Ld {
            kind: LdKind::Hu,
            d: DReg(r1),
            base: AReg(r2),
            off10,
            postinc,
        },
        39 => Instr::Ld {
            kind: LdKind::W,
            d: DReg(r1),
            base: AReg(r2),
            off10,
            postinc,
        },
        40 => Instr::LdA {
            a: AReg(r1),
            base: AReg(r2),
            off10,
            postinc,
        },
        41 => Instr::St {
            kind: StKind::B,
            s: DReg(r1),
            base: AReg(r2),
            off10,
            postinc,
        },
        42 => Instr::St {
            kind: StKind::H,
            s: DReg(r1),
            base: AReg(r2),
            off10,
            postinc,
        },
        43 => Instr::St {
            kind: StKind::W,
            s: DReg(r1),
            base: AReg(r2),
            off10,
            postinc,
        },
        44 => Instr::StA {
            s: AReg(r1),
            base: AReg(r2),
            off10,
            postinc,
        },
        45 => Instr::J { disp24 },
        46 => Instr::Jl { disp24 },
        47 => Instr::Ji { a: AReg(r1) },
        48 => Instr::Jli { a: AReg(r1) },
        49..=54 => Instr::Jcond {
            cond: CONDS[(op - 49) as usize],
            s1: DReg(r1),
            s2: DReg(r2),
            disp16: imm16s,
        },
        55..=60 => Instr::JcondZ {
            cond: CONDS[(op - 55) as usize],
            s1: DReg(r1),
            disp16: imm16s,
        },
        61 => Instr::Loop {
            a: AReg(r1),
            disp16: imm16s,
        },
        62 => Instr::Nop,
        _ => return Err(DecodeError { halfword: lo }),
    };
    Ok((instr, 4))
}

/// Decodes an entire code section into `(address, instruction)` pairs.
///
/// # Errors
///
/// Returns [`DecodeError`] at the first illegal instruction word; a
/// truncated trailing 32-bit instruction also fails.
pub fn decode_section(base: u32, data: &[u8]) -> Result<Vec<(u32, Instr)>, DecodeError> {
    let mut out = Vec::new();
    let mut off = 0usize;
    while off + 1 < data.len() {
        let lo = u16::from_le_bytes([data[off], data[off + 1]]);
        let hi = if off + 3 < data.len() {
            u16::from_le_bytes([data[off + 2], data[off + 3]])
        } else if lo & 1 == 1 {
            return Err(DecodeError { halfword: lo });
        } else {
            0
        };
        let (instr, size) = decode(lo, hi)?;
        out.push((base + off as u32, instr));
        off += size as usize;
    }
    Ok(out)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn roundtrip(i: Instr) {
        let bytes = encode(&i).unwrap();
        assert_eq!(bytes.len() as u32, i.size(), "size mismatch for {i}");
        let lo = u16::from_le_bytes([bytes[0], bytes[1]]);
        let hi = if bytes.len() == 4 {
            u16::from_le_bytes([bytes[2], bytes[3]])
        } else {
            0
        };
        let (back, size) = decode(lo, hi).unwrap();
        assert_eq!(back, i, "round-trip mismatch");
        assert_eq!(size, i.size());
    }

    #[test]
    fn roundtrip_representative_instructions() {
        use Instr::*;
        let cases = vec![
            Nop16,
            Debug16,
            Ret16,
            Mov16 {
                d: DReg(7),
                imm7: -64,
            },
            Mov16 {
                d: DReg(15),
                imm7: 63,
            },
            MovRR16 {
                d: DReg(1),
                s: DReg(14),
            },
            Add16 {
                d: DReg(0),
                s: DReg(15),
            },
            Sub16 {
                d: DReg(9),
                s: DReg(3),
            },
            LdW16 {
                d: DReg(4),
                a: AReg(12),
            },
            StW16 {
                a: AReg(2),
                s: DReg(8),
            },
            Mov {
                d: DReg(3),
                imm16: -32768,
            },
            Movh {
                d: DReg(3),
                imm16: 0xd000,
            },
            MovhA {
                a: AReg(0),
                imm16: 0xf000,
            },
            Addi {
                d: DReg(1),
                s: DReg(2),
                imm16: -1,
            },
            Addih {
                d: DReg(1),
                s: DReg(2),
                imm16: 0xffff,
            },
            MovRR {
                d: DReg(0),
                s: DReg(15),
            },
            MovA {
                a: AReg(5),
                s: DReg(6),
            },
            MovD {
                d: DReg(6),
                a: AReg(5),
            },
            MovAA {
                a: AReg(1),
                s: AReg(2),
            },
            Lea {
                a: AReg(4),
                base: AReg(4),
                off16: -4096,
            },
            Madd {
                d: DReg(0),
                acc: DReg(1),
                s1: DReg(2),
                s2: DReg(3),
            },
            Msub {
                d: DReg(15),
                acc: DReg(14),
                s1: DReg(13),
                s2: DReg(12),
            },
            Ld {
                kind: LdKind::W,
                d: DReg(2),
                base: AReg(3),
                off10: 511,
                postinc: false,
            },
            Ld {
                kind: LdKind::Bu,
                d: DReg(2),
                base: AReg(3),
                off10: -512,
                postinc: true,
            },
            LdA {
                a: AReg(1),
                base: AReg(10),
                off10: 8,
                postinc: false,
            },
            St {
                kind: StKind::H,
                s: DReg(0),
                base: AReg(15),
                off10: -2,
                postinc: true,
            },
            StA {
                s: AReg(11),
                base: AReg(10),
                off10: 0,
                postinc: false,
            },
            J { disp24: -(1 << 23) },
            Jl {
                disp24: (1 << 23) - 1,
            },
            Ji { a: AReg(11) },
            Jli { a: AReg(3) },
            Jcond {
                cond: Cond::LtU,
                s1: DReg(1),
                s2: DReg(2),
                disp16: -30000,
            },
            JcondZ {
                cond: Cond::Ne,
                s1: DReg(9),
                disp16: 32767,
            },
            Loop {
                a: AReg(6),
                disp16: -8,
            },
            Nop,
        ];
        for c in cases {
            roundtrip(c);
        }
    }

    #[test]
    fn roundtrip_all_binops() {
        for op in BINOPS {
            roundtrip(Instr::Bin {
                op,
                d: DReg(1),
                s1: DReg(2),
                s2: DReg(3),
            });
            roundtrip(Instr::BinI {
                op,
                d: DReg(1),
                s1: DReg(2),
                imm9: -200,
            });
        }
        for cond in CONDS {
            roundtrip(Instr::Jcond {
                cond,
                s1: DReg(0),
                s2: DReg(1),
                disp16: 12,
            });
            roundtrip(Instr::JcondZ {
                cond,
                s1: DReg(0),
                disp16: -12,
            });
        }
        for kind in [LdKind::B, LdKind::Bu, LdKind::H, LdKind::Hu, LdKind::W] {
            roundtrip(Instr::Ld {
                kind,
                d: DReg(5),
                base: AReg(6),
                off10: 16,
                postinc: true,
            });
        }
        for kind in [StKind::B, StKind::H, StKind::W] {
            roundtrip(Instr::St {
                kind,
                s: DReg(5),
                base: AReg(6),
                off10: 16,
                postinc: false,
            });
        }
    }

    #[test]
    fn out_of_range_fields_are_rejected() {
        assert!(encode(&Instr::Mov16 {
            d: DReg(0),
            imm7: 64
        })
        .is_err());
        assert!(encode(&Instr::BinI {
            op: BinOp::Add,
            d: DReg(0),
            s1: DReg(0),
            imm9: 256
        })
        .is_err());
        assert!(encode(&Instr::Ld {
            kind: LdKind::W,
            d: DReg(0),
            base: AReg(0),
            off10: 512,
            postinc: false
        })
        .is_err());
        assert!(encode(&Instr::J { disp24: 1 << 23 }).is_err());
    }

    #[test]
    fn illegal_opcodes_fail_decode() {
        // 16-bit opcode 15 is unallocated.
        assert!(decode(15 << 1, 0).is_err());
        // 32-bit opcode 127 is unallocated.
        assert!(decode(1 | (127 << 1), 0).is_err());
    }

    #[test]
    fn decode_section_walks_mixed_lengths() {
        let prog = vec![
            Instr::Mov16 {
                d: DReg(1),
                imm7: 5,
            },
            Instr::Movh {
                d: DReg(2),
                imm16: 0x1234,
            },
            Instr::Add16 {
                d: DReg(1),
                s: DReg(2),
            },
            Instr::Debug16,
        ];
        let mut bytes = Vec::new();
        for i in &prog {
            encode_into(i, &mut bytes).unwrap();
        }
        let decoded = decode_section(0x8000_0000, &bytes).unwrap();
        assert_eq!(decoded.len(), 4);
        assert_eq!(decoded[0], (0x8000_0000, prog[0]));
        assert_eq!(decoded[1], (0x8000_0002, prog[1]));
        assert_eq!(decoded[2], (0x8000_0006, prog[2]));
        assert_eq!(decoded[3], (0x8000_0008, prog[3]));
    }

    #[test]
    fn decode_section_rejects_truncated_tail() {
        let mut bytes = encode(&Instr::Nop).unwrap();
        bytes.truncate(2); // half of a 32-bit instruction
        assert!(decode_section(0, &bytes).is_err());
    }
}

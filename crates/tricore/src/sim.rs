//! Cycle-accurate interpretive golden model of the source processor.
//!
//! This simulator plays the role of the TriCore TC10GP evaluation board
//! in the paper's experiments: it executes the same ELF images the
//! translator consumes and reports the *measured* cycle count that the
//! translated program's generated cycle count is compared against
//! (Fig. 6), as well as the board-speed reference of Fig. 5 and Table 1.
//!
//! Timing comes from the shared [`TimingModel`]
//! (dual-issue pairing, operand stalls, divider occupancy, branch costs
//! with static BTFN prediction) plus a set-associative instruction cache
//! ([`CacheSim`]) charged per line fetch.
//!
//! # Dispatch modes
//!
//! The simulator has four dispatch cores selected by [`DispatchMode`]:
//!
//! * [`DispatchMode::Predecoded`] (the default) decodes the whole
//!   `.text` image once at load into a dense table. Each entry carries
//!   the decoded instruction, its fall-through and direct-branch-target
//!   *table indices*, the cache lines its fetch touches, and its
//!   read/write register sets — so the hot loop chases indices through
//!   a flat `Vec` and never hashes an address or allocates.
//! * [`DispatchMode::Compiled`] goes the paper's final step: every
//!   basic block of that table (partitioned by the shared
//!   [`cabt_exec::blocks::BlockMap`]) is fused at load into a run of
//!   specialized closures, and dispatch is block-threaded — one
//!   [`ExecutionEngine::step_unit`] executes a whole block and chases
//!   the successor block id. Bit-identical to the pre-decoded core at
//!   every block boundary; block boundaries are the *only* stop
//!   points (budgeted runs overshoot into the current block's end).
//! * [`DispatchMode::Trace`] adds the profile-guided superblock tier on
//!   top of the compiled core: block-edge counters collected during a
//!   warm-up window, hot chains fused into single multi-block closure
//!   runs with side-exit guards ([`cabt_exec::trace`]). One step
//!   dispatches a whole *trace* (up to a bounded number of loop
//!   iterations for loop traces), so stop points coarsen further; the
//!   architectural trajectory stays bit-identical.
//! * [`DispatchMode::Naive`] is the retained seed interpreter: an
//!   address-keyed map looked up on every step, with per-step line and
//!   operand-set computation. It exists as the reference for the
//!   differential tests proving the other cores bit-identical.
//!
//! All modes produce exactly the same architectural state, cycle
//! counts, statistics and fault behaviour (the compiled core observed
//! at block boundaries, the trace core at trace boundaries).

use crate::arch::{ArchDesc, CacheConfig, CacheSim, PreTiming, TimingModel, TimingState};
use crate::compiled::{self, CompiledProgram, CompiledTrace, Ctl, Hot, TraceCont};
use crate::encode::decode_section;
use crate::isa::{AReg, Instr, LdKind, StKind, RA};
use cabt_exec::trace::{grow, TraceConfig, TracePlan, TraceProfile, TraceStats};
use cabt_exec::{EngineStats, ExecutionEngine};
use cabt_isa::codec::{ByteReader, ByteWriter, CodecError};
use cabt_isa::elf::ElfFile;
use cabt_isa::mem::Memory;
use cabt_isa::IsaError;
use std::collections::HashMap;
use std::fmt;

/// Start of the memory-mapped I/O region on the source SoC bus.
pub const IO_BASE: u32 = 0xf000_0000;
/// End (exclusive) of the memory-mapped I/O region.
pub const IO_END: u32 = 0xf010_0000;

/// A memory-mapped device attached to the source processor's bus.
///
/// The golden model routes loads/stores inside `IO_BASE..IO_END` to this
/// trait so the SoC-peripheral experiments can run the same program on
/// the reference model and on the translated platform. Every access
/// carries `cycle`, the core's cycle count at the access, so
/// time-dependent devices (timers, UART timestamps) observe the *same*
/// clock the golden model is measured in — on the golden side the core
/// is the SoC clock.
pub trait IoDevice: Send {
    /// Handles a load of `size` bytes (1, 2 or 4) from `addr` at core
    /// time `cycle`.
    fn io_read(&mut self, cycle: u64, addr: u32, size: u32) -> u32;
    /// Handles a store of `size` bytes to `addr` at core time `cycle`.
    fn io_write(&mut self, cycle: u64, addr: u32, size: u32, value: u32);
}

/// Errors raised while simulating.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum SimError {
    /// The program counter left the loaded program.
    PcInvalid {
        /// The bad program counter.
        pc: u32,
    },
    /// A data access failed.
    Mem(IsaError),
    /// The instruction limit of [`Simulator::run`] was exceeded.
    InstructionLimit,
}

impl fmt::Display for SimError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            SimError::PcInvalid { pc } => write!(f, "pc {pc:#010x} is outside the program"),
            SimError::Mem(e) => write!(f, "memory fault: {e}"),
            SimError::InstructionLimit => write!(f, "instruction limit exceeded"),
        }
    }
}

impl std::error::Error for SimError {}

impl From<IsaError> for SimError {
    fn from(e: IsaError) -> Self {
        SimError::Mem(e)
    }
}

/// Architectural register state.
#[derive(Debug, Clone, Default)]
pub struct Cpu {
    d: [u32; 16],
    a: [u32; 16],
    /// Program counter.
    pub pc: u32,
}

impl Cpu {
    /// Reads data register `i`.
    ///
    /// # Panics
    ///
    /// Panics if `i > 15`.
    pub fn d(&self, i: u8) -> u32 {
        self.d[i as usize]
    }

    /// Reads address register `i`.
    ///
    /// # Panics
    ///
    /// Panics if `i > 15`.
    pub fn a(&self, i: u8) -> u32 {
        self.a[i as usize]
    }

    /// Writes data register `i`.
    pub fn set_d(&mut self, i: u8, v: u32) {
        self.d[i as usize] = v;
    }

    /// Writes address register `i`.
    pub fn set_a(&mut self, i: u8, v: u32) {
        self.a[i as usize] = v;
    }
}

/// Why [`Simulator::run`] returned.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum RunExit {
    /// The program executed `debug` (normal termination).
    Halted,
}

/// Counters accumulated while running.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct RunStats {
    /// Instructions retired.
    pub instructions: u64,
    /// Source-processor cycles consumed.
    pub cycles: u64,
    /// Conditional branches executed (including `loop`).
    pub cond_branches: u64,
    /// Conditional branches taken.
    pub taken: u64,
    /// Conditional branches whose static prediction was wrong.
    pub mispredicted: u64,
    /// Instruction-cache line accesses.
    pub icache_accesses: u64,
    /// Instruction-cache misses.
    pub icache_misses: u64,
    /// Cycles spent stalled on instruction-cache line fills.
    pub stall_cycles: u64,
    /// Why the run ended.
    pub exit: Option<RunExitKind>,
}

/// Exit kind stored in [`RunStats`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum RunExitKind {
    /// Program halted via `debug`.
    Halted,
}

/// Which dispatch core [`Simulator::step`] uses.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum DispatchMode {
    /// Decode-once table dispatch (index-chased hot loop).
    #[default]
    Predecoded,
    /// Block-compiled dispatch: every basic block fused into one run of
    /// specialized closures at load, executed block-at-a-time. One
    /// [`Simulator::step`] (and one [`ExecutionEngine::step_unit`])
    /// dispatches a *whole basic block*, so block boundaries are the
    /// only stop points: `run_until` budgets are checked between
    /// blocks and may overshoot into the end of the current block, and
    /// snapshots always land on block boundaries. Architectural state,
    /// cycle counts, statistics and fault behaviour are bit-identical
    /// to [`DispatchMode::Predecoded`] at every boundary.
    Compiled,
    /// Trace-compiled dispatch: the compiled core plus the
    /// profile-guided superblock tier. During a warm-up window
    /// ([`cabt_exec::trace::TraceConfig::warmup`] profiled block
    /// dispatches) the engine counts block executions and exit edges;
    /// when a block's count reaches the hot threshold, the hottest
    /// fall/taken chain is fused into one closure run spanning its
    /// blocks, with fetch line runs proved across the seams and
    /// side-exit guards falling back to block dispatch. Once the
    /// window closes profiling stops and dispatch is pure table
    /// lookups. One [`Simulator::step`] executes a whole trace —
    /// bounded loop-trace iteration included — so budgets overshoot
    /// further than under [`DispatchMode::Compiled`]; everything
    /// architectural stays bit-identical at every stop point.
    Trace,
    /// The retained seed interpreter: address-map fetch on every step.
    Naive,
}

/// Sentinel for "no table entry".
pub(crate) const NO_IDX: u32 = u32::MAX;

/// One pre-decoded instruction: the decoded form plus everything the
/// hot loop would otherwise recompute per step.
#[derive(Debug, Clone, Copy)]
pub(crate) struct PreInstr {
    pub(crate) instr: Instr,
    /// Source address of this instruction.
    pub(crate) pc: u32,
    /// Address of the next sequential instruction.
    pub(crate) fall_pc: u32,
    /// Table index of the next sequential instruction (`NO_IDX` if it
    /// leaves the decoded image).
    pub(crate) fall: u32,
    /// Direct branch target address (0 when the instruction has none).
    pub(crate) target_pc: u32,
    /// Table index of the direct branch target.
    pub(crate) target: u32,
    /// First and last I-cache lines the fetch touches.
    pub(crate) line_first: u32,
    pub(crate) line_last: u32,
    /// Cached operand sets for the timing model (max 3 reads, 2 writes).
    pub(crate) reads: [u8; 3],
    pub(crate) nreads: u8,
    pub(crate) writes: [u8; 2],
    pub(crate) nwrites: u8,
    /// Cached per-instruction timing record.
    pub(crate) timing: PreTiming,
}

impl PreInstr {
    fn reads(&self) -> &[u8] {
        &self.reads[..self.nreads as usize]
    }

    fn writes(&self) -> &[u8] {
        &self.writes[..self.nwrites as usize]
    }
}

/// Resumable image of the golden model's mutable state — everything
/// [`ExecutionEngine::snapshot`] must capture so that
/// `snapshot → run → restore → run` replays bit-identically: registers,
/// data memory, pipeline timing state, cache contents, statistics and
/// the cached dispatch index. The pre-decoded table, the address index
/// and the timing model are load-time constants and stay shared with
/// the engine.
#[derive(Debug, Clone)]
pub struct SimSnapshot {
    cpu: Cpu,
    mem: Memory,
    tstate: TimingState,
    cache: Option<CacheSim>,
    stats: RunStats,
    cur: u32,
    halted: bool,
    trace: Option<TraceTierSnap>,
}

/// Trace-tier replay state carried by [`SimSnapshot`]. The tier is
/// architecturally invisible, but its profile counters decide *where*
/// budgeted runs stop (trace-granular overshoot), so a replay from a
/// snapshot must rewind them too. Compiled trace closures are not
/// cloned: restore keeps traces that were already formed at snapshot
/// time and drops later ones — the restored profile re-forms those at
/// the same points, from the same (deterministic) plans.
#[derive(Debug, Clone)]
struct TraceTierSnap {
    profile: TraceProfile,
    formed: Vec<bool>,
    tstats: TraceStats,
}

impl SimSnapshot {
    /// Serializes the snapshot for portable park/resume. The encoding
    /// captures exactly the fields `restore` re-seats; the pre-decoded
    /// table and timing model are load-time constants the resuming
    /// engine rebuilds from the same ELF.
    pub fn encode_into(&self, out: &mut Vec<u8>) {
        let mut w = ByteWriter::new(out);
        for &v in &self.cpu.d {
            w.u32(v);
        }
        for &v in &self.cpu.a {
            w.u32(v);
        }
        w.u32(self.cpu.pc);
        self.mem.encode_into(out);
        self.tstate.encode_into(out);
        let mut w = ByteWriter::new(out);
        match &self.cache {
            None => w.bool(false),
            Some(c) => {
                w.bool(true);
                c.encode_into(out);
            }
        }
        let mut w = ByteWriter::new(out);
        w.u64(self.stats.instructions);
        w.u64(self.stats.cycles);
        w.u64(self.stats.cond_branches);
        w.u64(self.stats.taken);
        w.u64(self.stats.mispredicted);
        w.u64(self.stats.icache_accesses);
        w.u64(self.stats.icache_misses);
        w.u64(self.stats.stall_cycles);
        w.bool(matches!(self.stats.exit, Some(RunExitKind::Halted)));
        w.u32(self.cur);
        w.bool(self.halted);
        match &self.trace {
            None => w.bool(false),
            Some(t) => {
                w.bool(true);
                t.profile.encode_into(out);
                let mut w = ByteWriter::new(out);
                w.u64(t.formed.len() as u64);
                for &f in &t.formed {
                    w.bool(f);
                }
                t.tstats.encode_into(out);
            }
        }
    }

    /// Decodes a [`SimSnapshot::encode_into`] image.
    ///
    /// # Errors
    ///
    /// Returns a [`CodecError`] on truncated or corrupt input.
    pub fn decode(r: &mut ByteReader<'_>) -> Result<Self, CodecError> {
        let mut cpu = Cpu::default();
        for v in &mut cpu.d {
            *v = r.u32()?;
        }
        for v in &mut cpu.a {
            *v = r.u32()?;
        }
        cpu.pc = r.u32()?;
        let mem = Memory::decode(r)?;
        let tstate = TimingState::decode(r)?;
        let cache = if r.bool()? {
            Some(CacheSim::decode(r)?)
        } else {
            None
        };
        let mut stats = RunStats {
            instructions: r.u64()?,
            cycles: r.u64()?,
            cond_branches: r.u64()?,
            taken: r.u64()?,
            mispredicted: r.u64()?,
            icache_accesses: r.u64()?,
            icache_misses: r.u64()?,
            stall_cycles: r.u64()?,
            exit: None,
        };
        if r.bool()? {
            stats.exit = Some(RunExitKind::Halted);
        }
        let cur = r.u32()?;
        let halted = r.bool()?;
        let trace = if r.bool()? {
            let profile = TraceProfile::decode(r)?;
            let nformed = r.count("formed trace flags", 1)?;
            let mut formed = Vec::with_capacity(nformed);
            for _ in 0..nformed {
                formed.push(r.bool()?);
            }
            Some(TraceTierSnap {
                profile,
                formed,
                tstats: TraceStats::decode(r)?,
            })
        } else {
            None
        };
        Ok(SimSnapshot {
            cpu,
            mem,
            tstate,
            cache,
            stats,
            cur,
            halted,
            trace,
        })
    }
}

/// The golden model's trace-tier state: the warm-up profile, the formed
/// traces (indexed by head block id) and the coverage counters.
struct TraceTier {
    cfg: TraceConfig,
    profile: TraceProfile,
    traces: Vec<Option<CompiledTrace>>,
    tstats: TraceStats,
}

impl TraceTier {
    fn new(blocks: usize, cfg: TraceConfig) -> TraceTier {
        TraceTier {
            cfg,
            profile: TraceProfile::new(blocks, &cfg),
            traces: (0..blocks).map(|_| None).collect(),
            tstats: TraceStats::default(),
        }
    }
}

/// Loop traces iterate in place, but a single [`Simulator::step`] stays
/// bounded: after this many back-edge trips the step returns (parked on
/// the loop head, a block leader) and the next step re-enters the
/// trace. Purely a stop-point granularity knob — any value yields the
/// same architectural trajectory.
const TRACE_LOOP_CAP: u32 = 64;

/// Where execution goes after an instruction.
#[derive(Debug, Clone, Copy)]
enum Flow {
    /// Fall through to the next sequential instruction.
    Fall,
    /// Take the instruction's direct branch target.
    Direct,
    /// Jump to a computed address (`ret`, `ji`, `jli`).
    Indirect(u32),
}

/// The golden-model simulator.
///
/// # Example
///
/// ```
/// use cabt_tricore::{asm::assemble, sim::Simulator};
///
/// let elf = assemble(".text\n_start: mov %d2, 7\n debug\n")?;
/// let mut sim = Simulator::new(&elf)?;
/// sim.run(100)?;
/// assert_eq!(sim.cpu.d(2), 7);
/// # Ok::<(), Box<dyn std::error::Error>>(())
/// ```
pub struct Simulator {
    /// Architectural register state.
    pub cpu: Cpu,
    /// Data memory (code is pre-decoded and never read as data).
    pub mem: Memory,
    /// Pristine copy of `mem` as loaded from the image, restored by
    /// [`ExecutionEngine::reset`] so reruns are reproducible even when
    /// the program mutates its data sections.
    mem_image: Memory,
    arch: ArchDesc,
    model: TimingModel,
    tstate: TimingState,
    cache: Option<CacheSim>,
    /// Copy of the cache geometry (hot loop must not borrow the cache).
    cache_cfg: CacheConfig,
    /// Pre-decoded instruction table, sorted by address. The naive path
    /// fetches through `index_of` into this table — the same per-step
    /// address hash the seed's instruction map cost.
    table: Vec<PreInstr>,
    /// Address → table index (entry points, indirect jumps).
    index_of: HashMap<u32, u32>,
    /// Block-compiled closure table (built by
    /// [`Simulator::set_dispatch`] on first selection of
    /// [`DispatchMode::Compiled`]; a load-time constant afterwards,
    /// shared by snapshots like the pre-decoded table).
    compiled: Option<CompiledProgram>,
    /// Trace-tier state (profile, formed traces, coverage counters) —
    /// built on first selection of [`DispatchMode::Trace`]. Formed
    /// traces are deterministic compilations of load-time data, so
    /// like the compiled table they survive [`ExecutionEngine::reset`]
    /// and are not part of snapshots: whichever tier dispatches a
    /// block, the architectural trajectory is identical.
    trace: Option<Box<TraceTier>>,
    /// Trace-tier knobs ([`Simulator::set_trace_config`]).
    trace_cfg: TraceConfig,
    /// Cached table index of `cpu.pc` (`NO_IDX` forces a map lookup).
    cur: u32,
    mode: DispatchMode,
    entry: u32,
    stats: RunStats,
    io: Option<Box<dyn IoDevice>>,
    halted: bool,
}

impl fmt::Debug for Simulator {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("Simulator")
            .field("pc", &self.cpu.pc)
            .field("mode", &self.mode)
            .field("stats", &self.stats)
            .field("halted", &self.halted)
            .finish_non_exhaustive()
    }
}

impl Simulator {
    /// Builds a simulator for `elf` with the default architecture
    /// description (48 MHz TC10GP-like core, 1 KiB 2-way I-cache).
    ///
    /// # Errors
    ///
    /// Returns [`SimError`] if the image fails to load or its code
    /// section does not decode.
    pub fn new(elf: &ElfFile) -> Result<Self, SimError> {
        Self::with_arch(elf, ArchDesc::default())
    }

    /// Builds a simulator with an explicit architecture description.
    ///
    /// # Errors
    ///
    /// See [`Simulator::new`].
    pub fn with_arch(elf: &ElfFile, arch: ArchDesc) -> Result<Self, SimError> {
        let mut mem = Memory::new();
        elf.load_into(&mut mem)?;
        let mem_image = mem.clone();
        let mut decoded: Vec<(u32, Instr)> = Vec::new();
        for s in &elf.sections {
            if s.kind == cabt_isa::elf::SectionKind::Text {
                let d = decode_section(s.addr, &s.data)
                    .map_err(|_| SimError::PcInvalid { pc: s.addr })?;
                decoded.extend(d);
            }
        }
        decoded.sort_by_key(|&(addr, _)| addr);

        let index_of: HashMap<u32, u32> = decoded
            .iter()
            .enumerate()
            .map(|(i, &(addr, _))| (addr, i as u32))
            .collect();
        let cfg = arch.cache;
        let model = TimingModel::new(arch.timing.clone());
        let table: Vec<PreInstr> = decoded
            .iter()
            .map(|&(pc, instr)| {
                let fall_pc = pc.wrapping_add(instr.size());
                let target_pc = instr.target(pc).unwrap_or(0);
                let r = instr.reads();
                let w = instr.writes();
                let mut reads = [0u8; 3];
                reads[..r.len()].copy_from_slice(&r);
                let mut writes = [0u8; 2];
                writes[..w.len()].copy_from_slice(&w);
                PreInstr {
                    instr,
                    pc,
                    fall_pc,
                    fall: index_of.get(&fall_pc).copied().unwrap_or(NO_IDX),
                    target_pc,
                    target: index_of.get(&target_pc).copied().unwrap_or(NO_IDX),
                    line_first: cfg.line_of(pc),
                    line_last: cfg.line_of(pc + instr.size() - 1),
                    reads,
                    nreads: r.len() as u8,
                    writes,
                    nwrites: w.len() as u8,
                    timing: model.pre_timing(&instr),
                }
            })
            .collect();

        let mut cpu = Cpu {
            pc: elf.entry,
            ..Cpu::default()
        };
        cpu.set_a(10, 0xd003_0000); // default stack pointer
        let cur = index_of.get(&elf.entry).copied().unwrap_or(NO_IDX);
        Ok(Simulator {
            cpu,
            mem,
            mem_image,
            model,
            cache: Some(CacheSim::new(arch.cache)),
            cache_cfg: arch.cache,
            arch,
            tstate: TimingState::new(),
            table,
            index_of,
            compiled: None,
            trace: None,
            trace_cfg: TraceConfig::default(),
            cur,
            mode: DispatchMode::default(),
            entry: elf.entry,
            stats: RunStats::default(),
            io: None,
            halted: false,
        })
    }

    /// Disables the instruction-cache model (an ideal-memory variant used
    /// by ablation benches).
    pub fn disable_icache(&mut self) {
        self.cache = None;
    }

    /// Selects the dispatch core (pre-decoded by default). Selecting
    /// [`DispatchMode::Compiled`] for the first time fuses the whole
    /// pre-decoded table into per-block closure runs (a one-off
    /// load-time cost, like the pre-decode pass itself).
    pub fn set_dispatch(&mut self, mode: DispatchMode) {
        self.mode = mode;
        if matches!(mode, DispatchMode::Compiled | DispatchMode::Trace) && self.compiled.is_none() {
            let entry = self.index_of.get(&self.entry).copied().unwrap_or(NO_IDX);
            self.compiled = Some(compiled::compile(&self.table, entry));
        }
        if mode == DispatchMode::Trace && self.trace.is_none() {
            let blocks = self.compiled.as_ref().expect("compiled above").map.len();
            self.trace = Some(Box::new(TraceTier::new(blocks, self.trace_cfg)));
        }
    }

    /// The dispatch core in use.
    pub fn dispatch(&self) -> DispatchMode {
        self.mode
    }

    /// Sets the trace-tier knobs (warm-up window, hot threshold, trace
    /// length cap). Call before — or together with — selecting
    /// [`DispatchMode::Trace`]: an already-built tier is rebuilt with a
    /// fresh profile and no formed traces.
    pub fn set_trace_config(&mut self, cfg: TraceConfig) {
        self.trace_cfg = cfg;
        if self.trace.is_some() {
            let blocks = self
                .compiled
                .as_ref()
                .map(|p| p.map.len())
                .unwrap_or_default();
            self.trace = Some(Box::new(TraceTier::new(blocks, cfg)));
        }
    }

    /// Trace-tier formation/coverage counters (`None` unless
    /// [`DispatchMode::Trace`] was ever selected). Deliberately outside
    /// [`RunStats`], which is compared bit-for-bit across dispatch
    /// modes by the differential suites.
    pub fn trace_stats(&self) -> Option<TraceStats> {
        self.trace.as_ref().map(|t| t.tstats)
    }

    /// The chains the trace tier has fused so far, in head-block order —
    /// the dynamic side of the static trace-prediction cross-check.
    /// Empty when the trace tier is off or nothing turned hot yet.
    pub fn trace_plans(&self) -> Vec<TracePlan> {
        self.trace
            .as_ref()
            .map(|t| {
                t.traces
                    .iter()
                    .filter_map(|tr| tr.as_ref().map(|tr| tr.plan.clone()))
                    .collect()
            })
            .unwrap_or_default()
    }

    /// Attaches a memory-mapped I/O device for `IO_BASE..IO_END`.
    pub fn set_io_device(&mut self, dev: Box<dyn IoDevice>) {
        self.io = Some(dev);
    }

    /// The architecture description in use.
    pub fn arch(&self) -> &ArchDesc {
        &self.arch
    }

    /// Counters accumulated so far.
    pub fn stats(&self) -> RunStats {
        let mut s = self.stats;
        s.cycles = self.tstate.cycles();
        s
    }

    /// True once the program executed `debug`.
    pub fn is_halted(&self) -> bool {
        self.halted
    }

    /// Runs until `debug` halts the program.
    ///
    /// # Errors
    ///
    /// Returns [`SimError::InstructionLimit`] after `max_instructions`
    /// retirements without a halt, or any fault from [`Simulator::step`].
    pub fn run(&mut self, max_instructions: u64) -> Result<RunStats, SimError> {
        while !self.halted {
            if self.stats.instructions >= max_instructions {
                return Err(SimError::InstructionLimit);
            }
            self.step()?;
        }
        Ok(self.stats())
    }

    /// Executes a single dispatch unit, returning the last instruction
    /// it retired: one instruction on the interpretive cores, one whole
    /// basic block (reporting its terminator) under
    /// [`DispatchMode::Compiled`].
    ///
    /// # Errors
    ///
    /// Returns [`SimError::PcInvalid`] if the program counter points
    /// outside the decoded program, or [`SimError::Mem`] on data faults.
    pub fn step(&mut self) -> Result<Instr, SimError> {
        match self.mode {
            DispatchMode::Predecoded => self.step_predecoded(),
            DispatchMode::Compiled => self.step_compiled(),
            DispatchMode::Trace => self.step_trace(),
            DispatchMode::Naive => self.step_naive(),
        }
    }

    /// The block-compiled hot loop: resolve the current block once,
    /// run its fused closures to the terminator, follow the exit edge.
    /// Per-instruction work inside the closures mirrors the
    /// pre-decoded step exactly (cache accounting, semantics, the
    /// stateful timing model, branch statistics); only the retirement
    /// counter is batched per block — and reconstructed on the fault
    /// path, where `cpu.pc` parks on the faulting instruction just as
    /// the interpretive cores leave it.
    fn step_compiled(&mut self) -> Result<Instr, SimError> {
        if self.compiled.is_none() {
            // Defensive: `set_dispatch` builds the table; keep the
            // invariant even if the mode was forced some other way.
            let entry = self.index_of.get(&self.entry).copied().unwrap_or(NO_IDX);
            self.compiled = Some(compiled::compile(&self.table, entry));
        }
        let pc = self.cpu.pc;
        let cur = if self.cur != NO_IDX && self.table[self.cur as usize].pc == pc {
            self.cur
        } else {
            *self.index_of.get(&pc).ok_or(SimError::PcInvalid { pc })?
        };
        // Mid-block entry (an indirect jump computed into the middle of
        // a block, or a debugger-forced pc): the fused closures assume
        // in-order execution from the block leader (their fetch
        // prologue bakes in the block's line runs), so interpret
        // instruction-by-instruction until dispatch lands back on a
        // block leader. Rare by construction — every direct target and
        // post-control instruction *is* a leader.
        let off = {
            let prog = self.compiled.as_ref().expect("compiled table built above");
            prog.map.location(cur).offset
        };
        if off != 0 {
            self.cur = cur;
            return self.step_predecoded();
        }
        let Simulator {
            compiled,
            cpu,
            mem,
            io,
            tstate,
            cache,
            cache_cfg,
            model,
            stats,
            halted,
            cur: cur_field,
            index_of,
            ..
        } = self;
        let prog = compiled.as_ref().expect("compiled table built above");
        let blk = &prog.blocks[prog.map.location(cur).block as usize];
        let mut hot = Hot {
            cpu: &mut *cpu,
            mem: &mut *mem,
            io: &mut *io,
            tstate: &mut *tstate,
            cache: &mut *cache,
            cache_cfg: *cache_cfg,
            model,
            stats: &mut *stats,
            halted: &mut *halted,
        };
        let mut i = 0usize;
        let exit = loop {
            match (blk.ops[i])(&mut hot) {
                Ok(Ctl::Next) => i += 1,
                Ok(ctl) => break ctl,
                Err(e) => {
                    // The faulting instruction does not retire; the ops
                    // before it already did everything but the batched
                    // count.
                    stats.instructions += i as u64;
                    cpu.pc = blk.pcs[i];
                    *cur_field = blk.first + i as u32;
                    return Err(e);
                }
            }
        };
        stats.instructions += (i + 1) as u64;
        let (next_pc, next_idx) = match exit {
            Ctl::Next | Ctl::Fall => (blk.fall_pc, blk.fall_unit),
            Ctl::Taken => (blk.target_pc, blk.taken_unit),
            Ctl::Indirect(a) => (a, index_of.get(&a).copied().unwrap_or(NO_IDX)),
        };
        cpu.pc = next_pc;
        *cur_field = next_idx;
        Ok(blk.term)
    }

    /// The trace-tier hot loop. At a block leader with a formed trace,
    /// the whole fused superblock executes inside this one step — seam
    /// guards compare each segment terminator's actual exit with the
    /// edge the trace was selected along, side-exiting into normal
    /// dispatch on mismatch; loop traces iterate in place (bounded by
    /// [`TRACE_LOOP_CAP`]) using the head segment's back-edge
    /// specialization. Leaders without a trace take single-block
    /// compiled dispatch, feeding the warm-up profile that forms
    /// traces; mid-block entries keep the pre-decoded fallback.
    /// Retirement is batched per trace and reconstructed on the fault
    /// path exactly like the block core.
    fn step_trace(&mut self) -> Result<Instr, SimError> {
        if self.compiled.is_none() || self.trace.is_none() {
            // Defensive: `set_dispatch` builds both tables.
            self.set_dispatch(DispatchMode::Trace);
        }
        let pc = self.cpu.pc;
        let cur = if self.cur != NO_IDX && self.table[self.cur as usize].pc == pc {
            self.cur
        } else {
            *self.index_of.get(&pc).ok_or(SimError::PcInvalid { pc })?
        };
        let off = {
            let prog = self.compiled.as_ref().expect("compiled table built above");
            prog.map.location(cur).offset
        };
        if off != 0 {
            self.cur = cur;
            return self.step_predecoded();
        }
        let Simulator {
            compiled,
            trace,
            table,
            cpu,
            mem,
            io,
            tstate,
            cache,
            cache_cfg,
            model,
            stats,
            halted,
            cur: cur_field,
            index_of,
            ..
        } = self;
        let prog = compiled.as_ref().expect("compiled table built above");
        let tier = &mut **trace.as_mut().expect("trace tier built above");
        let head = prog.map.location(cur).block;

        // Warm-up profiling: count the dispatch; on the hot-threshold
        // crossing, grow the hottest chain and fuse it.
        if tier.traces[head as usize].is_none()
            && tier.profile.warm()
            && tier.profile.record_exec(head, tier.cfg.hot_threshold)
        {
            if let Some(plan) = grow(&prog.map, &tier.profile, head, &tier.cfg) {
                tier.tstats.traces += 1;
                tier.tstats.trace_blocks += plan.blocks.len() as u64;
                tier.traces[head as usize] = Some(compiled::compile_trace(
                    table.as_slice(),
                    &prog.map,
                    &plan,
                    cache_cfg.line_bytes,
                ));
            }
        }

        let mut hot = Hot {
            cpu: &mut *cpu,
            mem: &mut *mem,
            io: &mut *io,
            tstate: &mut *tstate,
            cache: &mut *cache,
            cache_cfg: *cache_cfg,
            model,
            stats: &mut *stats,
            halted: &mut *halted,
        };

        if let Some(tr) = tier.traces[head as usize].as_ref() {
            // Fused superblock dispatch. Batched-fetch fast path: when
            // every line the whole trace touches is MRU-resident, each
            // per-op access would be a pure hit with no tag/LRU
            // movement — so the fetch-free ops run, nothing can move
            // cache state for the rest of the step (the guard keeps
            // holding through seams and loop iterations), and all
            // fetch accounting of the step collapses into one add at
            // the exit point. Bit-identical: no observation point
            // exists inside a step. With no cache configured the fast
            // path is unconditional and accounts nothing, like the
            // pre-decoded prologue.
            let (batched, counted) = match hot.cache.as_ref() {
                None => (true, false),
                Some(c) => (tr.lines.iter().all(|&l| c.mru_resident(l)), true),
            };
            let mut done = 0u64; // units retired in completed segments
            let mut acc = 0u64; // batched icache accesses of those
            let mut si = 0usize;
            let mut iters = 0u32;
            let mut on_back_edge = false;
            loop {
                let seg = &tr.segs[si];
                let ops = if batched {
                    &seg.lean_ops[..]
                } else if on_back_edge && si == 0 {
                    tr.loop_head_ops
                        .as_deref()
                        .expect("loop traces carry head ops")
                } else {
                    &seg.ops[..]
                };
                let mut i = 0usize;
                let exit = loop {
                    match (ops[i])(&mut hot) {
                        Ok(Ctl::Next) => i += 1,
                        Ok(ctl) => break ctl,
                        Err(e) => {
                            // Fault inside the trace: identical parking
                            // to the block core — the completed prefix
                            // retires, the faulting op does not. On the
                            // batched path, fetch precedes execute, so
                            // ops 0..=i did fetch — their accesses (all
                            // guarded hits) land now.
                            if batched && counted {
                                let n = acc + u64::from(seg.acc_prefix[i]);
                                hot.stats.icache_accesses += n;
                                hot.cache
                                    .as_mut()
                                    .expect("counted implies a cache")
                                    .batch_hits(n);
                            }
                            let retired = done + i as u64;
                            hot.stats.instructions += retired;
                            tier.tstats.trace_retired += retired;
                            hot.cpu.pc = seg.pcs[i];
                            *cur_field = seg.first + i as u32;
                            return Err(e);
                        }
                    }
                };
                acc += u64::from(seg.accesses);
                done += (i + 1) as u64;
                // Seam guard: did control leave through the edge the
                // trace was selected along?
                let cont = if si + 1 < tr.segs.len() {
                    seg.cont
                } else {
                    tr.loop_cont
                };
                let follows = !*hot.halted
                    && matches!(
                        (cont, exit),
                        (Some(TraceCont::Fall), Ctl::Next | Ctl::Fall)
                            | (Some(TraceCont::Taken), Ctl::Taken)
                    );
                if follows {
                    if si + 1 < tr.segs.len() {
                        si += 1;
                        continue;
                    }
                    // Back edge of a loop trace: iterate in place.
                    iters += 1;
                    if iters < TRACE_LOOP_CAP {
                        si = 0;
                        on_back_edge = true;
                        continue;
                    }
                    // Cap hit: end the step on the matched edge — it
                    // lands on the head leader, like any side exit.
                }
                // Side exit: resolve the successor exactly as the
                // block core would and return to normal dispatch.
                let (next_pc, next_idx) = match exit {
                    Ctl::Next | Ctl::Fall => (seg.fall_pc, seg.fall_unit),
                    Ctl::Taken => (seg.target_pc, seg.taken_unit),
                    Ctl::Indirect(a) => (a, index_of.get(&a).copied().unwrap_or(NO_IDX)),
                };
                // Direct side exits always land on block leaders
                // (targets and post-terminator successors are leaders
                // by construction); indirect exits may land mid-block
                // and take the documented pre-decoded fallback.
                debug_assert!(
                    matches!(exit, Ctl::Indirect(_))
                        || next_idx == NO_IDX
                        || prog.map.location(next_idx).offset == 0,
                    "trace side exit must land on a block leader"
                );
                if batched && counted {
                    hot.stats.icache_accesses += acc;
                    hot.cache
                        .as_mut()
                        .expect("counted implies a cache")
                        .batch_hits(acc);
                }
                hot.cpu.pc = next_pc;
                *cur_field = next_idx;
                hot.stats.instructions += done;
                tier.tstats.trace_retired += done;
                return Ok(seg.term);
            }
        }

        // Single-block compiled dispatch, recording exit edges while
        // the warm-up window is open.
        let blk = &prog.blocks[head as usize];
        let mut i = 0usize;
        let exit = loop {
            match (blk.ops[i])(&mut hot) {
                Ok(Ctl::Next) => i += 1,
                Ok(ctl) => break ctl,
                Err(e) => {
                    hot.stats.instructions += i as u64;
                    hot.cpu.pc = blk.pcs[i];
                    *cur_field = blk.first + i as u32;
                    return Err(e);
                }
            }
        };
        hot.stats.instructions += (i + 1) as u64;
        if tier.profile.warm() {
            match exit {
                Ctl::Next | Ctl::Fall => tier.profile.record_fall(head),
                Ctl::Taken => tier.profile.record_taken(head),
                Ctl::Indirect(_) => {}
            }
        }
        let (next_pc, next_idx) = match exit {
            Ctl::Next | Ctl::Fall => (blk.fall_pc, blk.fall_unit),
            Ctl::Taken => (blk.target_pc, blk.taken_unit),
            Ctl::Indirect(a) => (a, index_of.get(&a).copied().unwrap_or(NO_IDX)),
        };
        hot.cpu.pc = next_pc;
        *cur_field = next_idx;
        Ok(blk.term)
    }

    /// The pre-decoded hot loop: index-chased dispatch over the flat
    /// table, no address hashing, no per-step operand-set allocation.
    fn step_predecoded(&mut self) -> Result<Instr, SimError> {
        let pc = self.cpu.pc;
        // The cached index is valid unless someone rewrote `cpu.pc`
        // behind our back (debuggers do); fall back to one map lookup.
        let cur = if self.cur != NO_IDX && self.table[self.cur as usize].pc == pc {
            self.cur
        } else {
            *self.index_of.get(&pc).ok_or(SimError::PcInvalid { pc })?
        };
        let pi = self.table[cur as usize];

        // Instruction-cache accounting over the precomputed line span.
        if let Some(cache) = &mut self.cache {
            let mut line = pi.line_first;
            loop {
                self.stats.icache_accesses += 1;
                if !cache.access(line) {
                    self.stats.icache_misses += 1;
                    self.stats.stall_cycles += self.cache_cfg.miss_penalty as u64;
                    self.tstate.stall(self.cache_cfg.miss_penalty as u64);
                }
                if line == pi.line_last {
                    break;
                }
                line += self.cache_cfg.line_bytes;
            }
        }

        let (flow, taken) = self.exec(pc, pi.instr, pi.fall_pc)?;
        let (next_pc, next_idx) = match flow {
            Flow::Fall => (pi.fall_pc, pi.fall),
            Flow::Direct => (pi.target_pc, pi.target),
            Flow::Indirect(a) => (a, self.index_of.get(&a).copied().unwrap_or(NO_IDX)),
        };

        let dyn_taken = taken.or(Some(true));
        self.model.step_pre(
            &mut self.tstate,
            &pi.timing,
            dyn_taken,
            pi.reads(),
            pi.writes(),
        );
        self.finish_step(taken, pi.timing.predicts_taken);
        self.cpu.pc = next_pc;
        self.cur = next_idx;
        Ok(pi.instr)
    }

    /// The retained naive interpreter: per-step map fetch, per-step line
    /// computation, per-step operand-set construction — exactly the seed
    /// implementation, kept as the differential-test reference.
    fn step_naive(&mut self) -> Result<Instr, SimError> {
        let pc = self.cpu.pc;
        // Address-hashed fetch on every step — the seed's dispatch shape.
        let idx = *self.index_of.get(&pc).ok_or(SimError::PcInvalid { pc })?;
        let instr = self.table[idx as usize].instr;

        // Instruction-cache accounting: charge each line the fetch touches.
        if let Some(cache) = &mut self.cache {
            let cfg = *cache.config();
            let first = cfg.line_of(pc);
            let last = cfg.line_of(pc + instr.size() - 1);
            let mut line = first;
            loop {
                self.stats.icache_accesses += 1;
                if !cache.access(line) {
                    self.stats.icache_misses += 1;
                    self.stats.stall_cycles += cfg.miss_penalty as u64;
                    self.tstate.stall(cfg.miss_penalty as u64);
                }
                if line == last {
                    break;
                }
                line += cfg.line_bytes;
            }
        }

        let fall_pc = pc.wrapping_add(instr.size());
        let (flow, taken) = self.exec(pc, instr, fall_pc)?;
        let next_pc = match flow {
            Flow::Fall => fall_pc,
            Flow::Direct => instr.target(pc).expect("direct"),
            Flow::Indirect(a) => a,
        };

        // Timing: dynamic outcome for conditionals, exact for the rest.
        let dyn_taken = taken.or(Some(true));
        self.model.step(&mut self.tstate, &instr, dyn_taken);
        let predicts = if taken.is_some() {
            self.arch.timing.predicts_taken(&instr)
        } else {
            None
        };
        self.finish_step(taken, predicts);
        self.cpu.pc = next_pc;
        self.cur = NO_IDX;
        Ok(instr)
    }

    /// Branch statistics and retirement shared by both dispatch cores;
    /// `predicts` is the instruction's static prediction (only read
    /// when `taken` is set).
    fn finish_step(&mut self, taken: Option<bool>, predicts: Option<bool>) {
        if let Some(t) = taken {
            self.stats.cond_branches += 1;
            if t {
                self.stats.taken += 1;
            }
            if predicts != Some(t) {
                self.stats.mispredicted += 1;
            }
        }
        self.stats.instructions += 1;
    }

    /// Executes one instruction's architectural effect and reports where
    /// control goes. Shared verbatim by both dispatch cores — this *is*
    /// the instruction semantics.
    fn exec(
        &mut self,
        pc: u32,
        instr: Instr,
        fall_pc: u32,
    ) -> Result<(Flow, Option<bool>), SimError> {
        let mut flow = Flow::Fall;
        let mut taken: Option<bool> = None;

        match instr {
            Instr::Nop16 | Instr::Nop => {}
            Instr::Debug16 => {
                self.halted = true;
                self.stats.exit = Some(RunExitKind::Halted);
            }
            Instr::Ret16 => flow = Flow::Indirect(self.cpu.a(RA.0)),
            Instr::Mov16 { d, imm7 } => self.cpu.set_d(d.0, imm7 as i32 as u32),
            Instr::MovRR16 { d, s } => self.cpu.set_d(d.0, self.cpu.d(s.0)),
            Instr::Add16 { d, s } => self
                .cpu
                .set_d(d.0, self.cpu.d(d.0).wrapping_add(self.cpu.d(s.0))),
            Instr::Sub16 { d, s } => self
                .cpu
                .set_d(d.0, self.cpu.d(d.0).wrapping_sub(self.cpu.d(s.0))),
            Instr::LdW16 { d, a } => {
                let v = self.load(self.cpu.a(a.0), LdKind::W)?;
                self.cpu.set_d(d.0, v);
            }
            Instr::StW16 { a, s } => {
                self.store(self.cpu.a(a.0), StKind::W, self.cpu.d(s.0))?;
            }
            Instr::Mov { d, imm16 } => self.cpu.set_d(d.0, imm16 as i32 as u32),
            Instr::Movh { d, imm16 } => self.cpu.set_d(d.0, (imm16 as u32) << 16),
            Instr::MovhA { a, imm16 } => self.cpu.set_a(a.0, (imm16 as u32) << 16),
            Instr::Addi { d, s, imm16 } => self
                .cpu
                .set_d(d.0, self.cpu.d(s.0).wrapping_add(imm16 as i32 as u32)),
            Instr::Addih { d, s, imm16 } => self
                .cpu
                .set_d(d.0, self.cpu.d(s.0).wrapping_add((imm16 as u32) << 16)),
            Instr::MovRR { d, s } => self.cpu.set_d(d.0, self.cpu.d(s.0)),
            Instr::MovA { a, s } => self.cpu.set_a(a.0, self.cpu.d(s.0)),
            Instr::MovD { d, a } => self.cpu.set_d(d.0, self.cpu.a(a.0)),
            Instr::MovAA { a, s } => self.cpu.set_a(a.0, self.cpu.a(s.0)),
            Instr::Lea { a, base, off16 } => self
                .cpu
                .set_a(a.0, self.cpu.a(base.0).wrapping_add(off16 as i32 as u32)),
            Instr::Bin { op, d, s1, s2 } => self
                .cpu
                .set_d(d.0, op.apply(self.cpu.d(s1.0), self.cpu.d(s2.0))),
            Instr::BinI { op, d, s1, imm9 } => self
                .cpu
                .set_d(d.0, op.apply(self.cpu.d(s1.0), imm9 as i32 as u32)),
            Instr::Madd { d, acc, s1, s2 } => {
                let v = self
                    .cpu
                    .d(acc.0)
                    .wrapping_add(self.cpu.d(s1.0).wrapping_mul(self.cpu.d(s2.0)));
                self.cpu.set_d(d.0, v);
            }
            Instr::Msub { d, acc, s1, s2 } => {
                let v = self
                    .cpu
                    .d(acc.0)
                    .wrapping_sub(self.cpu.d(s1.0).wrapping_mul(self.cpu.d(s2.0)));
                self.cpu.set_d(d.0, v);
            }
            Instr::Ld {
                kind,
                d,
                base,
                off10,
                postinc,
            } => {
                let addr = self.ea(base, off10, postinc);
                let v = self.load(addr, kind)?;
                self.cpu.set_d(d.0, v);
            }
            Instr::LdA {
                a,
                base,
                off10,
                postinc,
            } => {
                let addr = self.ea(base, off10, postinc);
                let v = self.load(addr, LdKind::W)?;
                self.cpu.set_a(a.0, v);
            }
            Instr::St {
                kind,
                s,
                base,
                off10,
                postinc,
            } => {
                let addr = self.ea(base, off10, postinc);
                self.store(addr, kind, self.cpu.d(s.0))?;
            }
            Instr::StA {
                s,
                base,
                off10,
                postinc,
            } => {
                let addr = self.ea(base, off10, postinc);
                self.store(addr, StKind::W, self.cpu.a(s.0))?;
            }
            Instr::J { .. } => {
                debug_assert!(instr.target(pc).is_some());
                flow = Flow::Direct;
            }
            Instr::Jl { .. } => {
                self.cpu.set_a(RA.0, fall_pc);
                flow = Flow::Direct;
            }
            Instr::Ji { a } => flow = Flow::Indirect(self.cpu.a(a.0)),
            Instr::Jli { a } => {
                let t = self.cpu.a(a.0);
                self.cpu.set_a(RA.0, fall_pc);
                flow = Flow::Indirect(t);
            }
            Instr::Jcond { cond, s1, s2, .. } => {
                let t = cond.eval(self.cpu.d(s1.0), self.cpu.d(s2.0));
                taken = Some(t);
                if t {
                    flow = Flow::Direct;
                }
            }
            Instr::JcondZ { cond, s1, .. } => {
                let t = cond.eval(self.cpu.d(s1.0), 0);
                taken = Some(t);
                if t {
                    flow = Flow::Direct;
                }
            }
            Instr::Loop { a, .. } => {
                let v = self.cpu.a(a.0).wrapping_sub(1);
                self.cpu.set_a(a.0, v);
                let t = v != 0;
                taken = Some(t);
                if t {
                    flow = Flow::Direct;
                }
            }
        }
        Ok((flow, taken))
    }

    fn ea(&mut self, base: AReg, off10: i16, postinc: bool) -> u32 {
        let b = self.cpu.a(base.0);
        if postinc {
            self.cpu.set_a(base.0, b.wrapping_add(off10 as i32 as u32));
            b
        } else {
            b.wrapping_add(off10 as i32 as u32)
        }
    }

    fn load(&mut self, addr: u32, kind: LdKind) -> Result<u32, SimError> {
        route_load(&mut self.mem, &mut self.io, &self.tstate, addr, kind)
    }

    fn store(&mut self, addr: u32, kind: StKind, value: u32) -> Result<(), SimError> {
        route_store(&mut self.mem, &mut self.io, &self.tstate, addr, kind, value)
    }
}

/// Routes a data load to memory or the I/O window — the one load path
/// shared by every dispatch core (the compiled closures call it
/// directly, so routing semantics cannot drift between modes).
pub(crate) fn route_load(
    mem: &mut Memory,
    io: &mut Option<Box<dyn IoDevice>>,
    tstate: &TimingState,
    addr: u32,
    kind: LdKind,
) -> Result<u32, SimError> {
    if (IO_BASE..IO_END).contains(&addr) {
        if let Some(dev) = io {
            let size = match kind {
                LdKind::B | LdKind::Bu => 1,
                LdKind::H | LdKind::Hu => 2,
                LdKind::W => 4,
            };
            let now = tstate.cycles();
            return Ok(dev.io_read(now, addr, size));
        }
    }
    Ok(match kind {
        LdKind::B => mem.read_u8(addr)? as i8 as i32 as u32,
        LdKind::Bu => mem.read_u8(addr)? as u32,
        LdKind::H => mem.read_u16(addr)? as i16 as i32 as u32,
        LdKind::Hu => mem.read_u16(addr)? as u32,
        LdKind::W => mem.read_u32(addr)?,
    })
}

/// Store twin of [`route_load`].
pub(crate) fn route_store(
    mem: &mut Memory,
    io: &mut Option<Box<dyn IoDevice>>,
    tstate: &TimingState,
    addr: u32,
    kind: StKind,
    value: u32,
) -> Result<(), SimError> {
    if (IO_BASE..IO_END).contains(&addr) {
        if let Some(dev) = io {
            let size = match kind {
                StKind::B => 1,
                StKind::H => 2,
                StKind::W => 4,
            };
            let now = tstate.cycles();
            dev.io_write(now, addr, size, value);
            return Ok(());
        }
    }
    match kind {
        StKind::B => mem.write_u8(addr, value as u8)?,
        StKind::H => mem.write_u16(addr, value as u16)?,
        StKind::W => mem.write_u32(addr, value)?,
    }
    Ok(())
}

impl ExecutionEngine for Simulator {
    type Error = SimError;
    type Snapshot = SimSnapshot;

    fn snapshot(&self) -> SimSnapshot {
        SimSnapshot {
            cpu: self.cpu.clone(),
            mem: self.mem.clone(),
            tstate: self.tstate.clone(),
            cache: self.cache.clone(),
            stats: self.stats,
            cur: self.cur,
            halted: self.halted,
            trace: self.trace.as_ref().map(|t| TraceTierSnap {
                profile: t.profile.clone(),
                formed: t.traces.iter().map(Option::is_some).collect(),
                tstats: t.tstats,
            }),
        }
    }

    fn restore(&mut self, snapshot: &SimSnapshot) {
        self.cpu = snapshot.cpu.clone();
        self.mem = snapshot.mem.clone();
        self.tstate = snapshot.tstate.clone();
        self.cache = snapshot.cache.clone();
        self.stats = snapshot.stats;
        self.cur = snapshot.cur;
        self.halted = snapshot.halted;
        match (&mut self.trace, &snapshot.trace) {
            (Some(tier), Some(snap)) => {
                tier.profile = snap.profile.clone();
                tier.tstats = snap.tstats;
                for (tr, &formed) in tier.traces.iter_mut().zip(&snap.formed) {
                    if !formed {
                        *tr = None;
                    }
                }
            }
            // Snapshot predates the tier: replay starts from a fresh
            // profile, exactly as the snapshotted engine would have.
            (Some(tier), None) => {
                let (blocks, cfg) = (tier.traces.len(), tier.cfg);
                **tier = TraceTier::new(blocks, cfg);
            }
            _ => {}
        }
    }

    /// Flat register space: `0..16` = `D0..D15`, `16..32` = `A0..A15`.
    fn reset(&mut self) {
        self.cpu = Cpu {
            pc: self.entry,
            ..Cpu::default()
        };
        self.cpu.set_a(10, 0xd003_0000);
        self.mem = self.mem_image.clone();
        self.tstate = TimingState::new();
        if self.cache.is_some() {
            self.cache = Some(CacheSim::new(self.arch.cache));
        }
        self.stats = RunStats::default();
        self.halted = false;
        self.cur = self.index_of.get(&self.entry).copied().unwrap_or(NO_IDX);
        // A reset engine reruns from a cold trace profile, so a rerun
        // reproduces the original run exactly — budget stop points
        // included, not just the architectural trajectory.
        if let Some(tier) = &mut self.trace {
            let (blocks, cfg) = (tier.traces.len(), tier.cfg);
            **tier = TraceTier::new(blocks, cfg);
        }
    }

    fn step_unit(&mut self) -> Result<(), SimError> {
        self.step().map(|_| ())
    }

    fn cycle(&self) -> u64 {
        self.tstate.cycles()
    }

    fn is_halted(&self) -> bool {
        self.halted
    }

    fn pc(&self) -> Option<u32> {
        let pc = self.cpu.pc;
        let known = (self.cur != NO_IDX && self.table[self.cur as usize].pc == pc)
            || self.index_of.contains_key(&pc);
        known.then_some(pc)
    }

    fn reg_count(&self) -> usize {
        32
    }

    fn read_reg_index(&self, index: usize) -> u32 {
        if index < 16 {
            self.cpu.d(index as u8)
        } else {
            self.cpu.a((index - 16) as u8)
        }
    }

    fn write_reg_index(&mut self, index: usize, value: u32) {
        if index < 16 {
            self.cpu.set_d(index as u8, value);
        } else {
            self.cpu.set_a((index - 16) as u8, value);
        }
    }

    fn read_mem(&mut self, addr: u32, len: usize) -> Result<Vec<u8>, SimError> {
        self.mem.read_block(addr, len).map_err(SimError::Mem)
    }

    fn engine_stats(&self) -> EngineStats {
        EngineStats {
            cycles: self.tstate.cycles(),
            retired: self.stats.instructions,
            stall_cycles: self.stats.stall_cycles,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::asm::assemble;
    use cabt_exec::{Limit, StopCause};

    fn run(src: &str) -> Simulator {
        let elf = assemble(src).expect("assembles");
        let mut sim = Simulator::new(&elf).expect("loads");
        sim.run(1_000_000).expect("halts");
        sim
    }

    #[test]
    fn arithmetic_and_halt() {
        let sim = run(".text\n_start: mov %d1, 20\nmov %d2, 22\nadd %d2, %d1\ndebug\n");
        assert_eq!(sim.cpu.d(2), 42);
        assert!(sim.is_halted());
    }

    #[test]
    fn loads_and_stores_round_trip() {
        let sim = run("
            .text
        _start:
            movh.a %a2, hi:buf
            lea  %a2, [%a2]lo:buf
            mov  %d1, -5
            st.w [%a2]0, %d1
            ld.w %d3, [%a2]0
            ld.h %d4, [%a2]0
            ld.bu %d5, [%a2]0
            debug
            .data
        buf: .word 0
        ");
        assert_eq!(sim.cpu.d(3), (-5i32) as u32);
        assert_eq!(sim.cpu.d(4), (-5i32) as u32);
        assert_eq!(sim.cpu.d(5), 0xfb);
    }

    #[test]
    fn postincrement_walks_array() {
        let sim = run("
            .text
        _start:
            movh.a %a2, hi:arr
            lea  %a2, [%a2]lo:arr
            mov  %d2, 0
            mov  %d0, 4
            mov.a %a3, %d0
        sum:
            ld.w %d1, [%a2+]4
            add  %d2, %d1
            loop %a3, sum
            debug
            .data
        arr: .word 10, 20, 30, 40
        ");
        assert_eq!(sim.cpu.d(2), 100);
    }

    #[test]
    fn call_and_return() {
        let sim = run("
            .text
        _start:
            mov %d2, 1
            call double
            call double
            debug
        double:
            add %d2, %d2
            ret
        ");
        assert_eq!(sim.cpu.d(2), 4);
    }

    #[test]
    fn conditional_branch_stats() {
        let sim = run("
            .text
        _start:
            mov %d0, 10
            mov %d2, 0
        top:
            add %d2, %d0
            addi %d0, %d0, -1
            jnz %d0, top
            debug
        ");
        assert_eq!(sim.cpu.d(2), 55);
        let st = sim.stats();
        assert_eq!(st.cond_branches, 10);
        assert_eq!(st.taken, 9);
        // Backward branch is predicted taken: exactly one mispredict (exit).
        assert_eq!(st.mispredicted, 1);
        assert_eq!(st.exit, Some(RunExitKind::Halted));
    }

    #[test]
    fn cycles_exceed_instructions_and_track_cache() {
        let sim = run(".text\n_start: mov %d1, 1\nmov %d2, 2\nmov %d3, 3\ndebug\n");
        let st = sim.stats();
        assert_eq!(st.instructions, 4);
        assert!(st.cycles >= st.instructions);
        assert!(st.icache_accesses >= 4);
        assert!(st.icache_misses >= 1, "cold start must miss");
        assert!(st.stall_cycles > 0, "misses stall the fetch");
    }

    #[test]
    fn icache_can_be_disabled() {
        let elf = assemble(".text\n_start: mov %d1, 1\ndebug\n").unwrap();
        let mut sim = Simulator::new(&elf).unwrap();
        sim.disable_icache();
        sim.run(100).unwrap();
        assert_eq!(sim.stats().icache_accesses, 0);
    }

    #[test]
    fn invalid_pc_faults() {
        let elf = assemble(".text\n_start: ji %a0\n").unwrap();
        let mut sim = Simulator::new(&elf).unwrap();
        sim.cpu.set_a(0, 0x1234_0000);
        sim.step().unwrap();
        assert!(matches!(
            sim.step(),
            Err(SimError::PcInvalid { pc: 0x1234_0000 })
        ));
    }

    #[test]
    fn instruction_limit_enforced() {
        let elf = assemble(".text\n_start: j _start\n").unwrap();
        let mut sim = Simulator::new(&elf).unwrap();
        assert_eq!(sim.run(50), Err(SimError::InstructionLimit));
    }

    #[test]
    fn io_device_sees_accesses() {
        struct Probe(Vec<(u32, u32)>);
        impl IoDevice for Probe {
            fn io_read(&mut self, _cycle: u64, _addr: u32, _size: u32) -> u32 {
                0x55
            }
            fn io_write(&mut self, _cycle: u64, addr: u32, _size: u32, value: u32) {
                self.0.push((addr, value));
            }
        }
        let elf = assemble(
            "
            .text
        _start:
            movh.a %a2, 0xf000
            mov %d1, 9
            st.w [%a2]16, %d1
            ld.w %d3, [%a2]16
            debug
        ",
        )
        .unwrap();
        let mut sim = Simulator::new(&elf).unwrap();
        sim.set_io_device(Box::new(Probe(Vec::new())));
        sim.run(100).unwrap();
        assert_eq!(sim.cpu.d(3), 0x55);
    }

    #[test]
    fn loop_instruction_counts_iterations() {
        let sim = run("
            .text
        _start:
            mov %d0, 5
            mov.a %a4, %d0
            mov %d2, 0
        body:
            addi %d2, %d2, 1
            loop %a4, body
            debug
        ");
        assert_eq!(sim.cpu.d(2), 5);
    }

    #[test]
    fn madd_accumulates() {
        let sim = run(
            ".text\n_start: mov %d1, 3\nmov %d2, 4\nmov %d3, 10\nmadd %d4, %d3, %d1, %d2\ndebug\n",
        );
        assert_eq!(sim.cpu.d(4), 22);
    }

    #[test]
    fn shift_and_logic_semantics() {
        let sim = run(
            ".text\n_start: mov %d1, -8\nsra %d2, %d1, 1\nsrl %d3, %d1, 1\nsll %d4, %d1, 1\nand %d5, %d1, 0xf\ndebug\n",
        );
        assert_eq!(sim.cpu.d(2) as i32, -4);
        assert_eq!(sim.cpu.d(3), 0x7fff_fffc);
        assert_eq!(sim.cpu.d(4) as i32, -16);
        assert_eq!(sim.cpu.d(5), 8);
    }

    /// An aggressive trace config so short unit-test programs actually
    /// form traces: no warm-up gate, near-immediate hotness.
    fn eager_traces() -> TraceConfig {
        TraceConfig {
            warmup: 1_000_000,
            hot_threshold: 2,
            max_blocks: 16,
            follow_taken: true,
        }
    }

    /// Every observable — registers, stats, cycles, fault shape — must
    /// be identical across all four dispatch cores at the halt.
    fn diff_modes(src: &str) {
        let elf = assemble(src).expect("assembles");
        let mut fast = Simulator::new(&elf).expect("loads");
        let run_as = |mode: DispatchMode| {
            let mut sim = Simulator::new(&elf).expect("loads");
            sim.set_trace_config(eager_traces());
            sim.set_dispatch(mode);
            let r = sim.run(1_000_000);
            (r, sim)
        };
        let rf = fast.run(1_000_000);
        for mode in [
            DispatchMode::Naive,
            DispatchMode::Compiled,
            DispatchMode::Trace,
        ] {
            let (rm, sim) = run_as(mode);
            assert_eq!(rf, rm, "{mode:?}: run results diverge");
            assert_eq!(fast.stats(), sim.stats(), "{mode:?}: stats diverge");
            for i in 0..16 {
                assert_eq!(fast.cpu.d(i), sim.cpu.d(i), "{mode:?}: d{i}");
                assert_eq!(fast.cpu.a(i), sim.cpu.a(i), "{mode:?}: a{i}");
            }
            assert_eq!(fast.cpu.pc, sim.cpu.pc, "{mode:?}: pc");
        }
    }

    #[test]
    fn predecoded_matches_naive_on_mixed_program() {
        diff_modes(
            "
            .text
        _start:
            mov %d0, 12
            mov %d2, 0
            call body
            debug
        body:
        top:
            add %d2, %d0
            addi %d0, %d0, -1
            jnz %d0, top
            ret
        ",
        );
    }

    #[test]
    fn compiled_blocks_retire_and_fault_like_the_interpreter() {
        // Block granularity: one step retires the whole entry block.
        let elf = assemble(".text\n_start: mov %d1, 1\nmov %d2, 2\nmov %d3, 3\ndebug\n").unwrap();
        let mut sim = Simulator::new(&elf).unwrap();
        sim.set_dispatch(DispatchMode::Compiled);
        let term = sim.step().unwrap();
        assert!(
            matches!(term, Instr::Debug16),
            "step reports the terminator"
        );
        assert_eq!(sim.stats().instructions, 4, "whole block retired");
        assert!(sim.is_halted());

        // A memory fault mid-block parks pc on the faulting instruction
        // and counts only the completed prefix — like the interpreter.
        // Misaligned word load faults mid-block.
        let elf = assemble(
            ".text\n_start: mov %d1, 7\nmovh.a %a2, 0x4000\nld.w %d3, [%a2]1\nmov %d4, 9\ndebug\n",
        )
        .unwrap();
        let run = |mode: DispatchMode| {
            let mut sim = Simulator::new(&elf).unwrap();
            sim.set_dispatch(mode);
            let err = loop {
                match sim.step() {
                    Ok(_) => {}
                    Err(e) => break e,
                }
            };
            (err, sim.cpu.pc, sim.stats())
        };
        let (ep, pp, sp) = run(DispatchMode::Predecoded);
        let (ec, pc, sc) = run(DispatchMode::Compiled);
        assert_eq!(ep, ec, "fault kind");
        assert_eq!(pp, pc, "fault pc");
        assert_eq!(sp, sc, "stats at the fault");
        assert!(matches!(ep, SimError::Mem(_)));
    }

    #[test]
    fn compiled_enters_blocks_mid_way_after_indirect_jumps() {
        // `ji` computed to land in the *middle* of the body block: the
        // compiled core must enter at the offset, not the leader.
        let src = "
            .text
        _start:
            movh.a %a2, hi:mid
            lea  %a2, [%a2]lo:mid
            ji   %a2
        body:
            mov %d1, 1
        mid:
            mov %d2, 2
            mov %d3, 3
            debug
        ";
        // `mid` is a symbol, which makes it a leader on the translator's
        // CFG — but the engine's block map only splits at control flow,
        // so force a mid-block landing by computing the address.
        let elf = assemble(src).unwrap();
        for mode in [DispatchMode::Predecoded, DispatchMode::Compiled] {
            let mut sim = Simulator::new(&elf).unwrap();
            sim.set_dispatch(mode);
            sim.run(100).unwrap();
            assert_eq!(sim.cpu.d(1), 0, "{mode:?}: skipped prefix must not run");
            assert_eq!(sim.cpu.d(2), 2, "{mode:?}");
            assert_eq!(sim.cpu.d(3), 3, "{mode:?}");
        }
        let stats = |mode: DispatchMode| {
            let mut sim = Simulator::new(&elf).unwrap();
            sim.set_dispatch(mode);
            sim.run(100).unwrap();
            sim.stats()
        };
        assert_eq!(
            stats(DispatchMode::Predecoded),
            stats(DispatchMode::Compiled)
        );
    }

    #[test]
    fn trace_tier_forms_traces_and_matches_predecoded() {
        // A hot loop plus a call/ret pair: the loop head crosses the
        // hot threshold, a loop trace forms, and most retirement moves
        // inside it — all while staying bit-identical to the
        // pre-decoded core.
        let src = "
            .text
        _start:
            mov %d0, 200
            mov %d2, 0
        top:
            call leaf
            add %d2, %d0
            addi %d0, %d0, -1
            jnz %d0, top
            debug
        leaf:
            addi %d10, %d10, 3
            ret
        ";
        let elf = assemble(src).unwrap();
        let mut base = Simulator::new(&elf).unwrap();
        base.run(1_000_000).unwrap();

        let mut sim = Simulator::new(&elf).unwrap();
        sim.set_trace_config(eager_traces());
        sim.set_dispatch(DispatchMode::Trace);
        sim.run(1_000_000).unwrap();

        assert_eq!(base.stats(), sim.stats());
        for i in 0..16 {
            assert_eq!(base.cpu.d(i), sim.cpu.d(i), "d{i}");
            assert_eq!(base.cpu.a(i), sim.cpu.a(i), "a{i}");
        }
        let ts = sim.trace_stats().expect("trace tier active");
        assert!(ts.traces > 0, "hot loop must form a trace");
        assert!(
            ts.trace_retired > sim.stats().instructions / 2,
            "most retirement should land inside traces: {} of {}",
            ts.trace_retired,
            sim.stats().instructions
        );
    }

    #[test]
    fn trace_tier_faults_and_budget_match_predecoded() {
        // The loop body loads through %a2, which walks forward by 6
        // each iteration and crosses into a misaligned word address
        // after the trace has formed: the fault must park pc on the
        // load with the completed-prefix retirement, exactly like the
        // pre-decoded core.
        let src = "
            .text
        _start:
            movh.a %a2, 0x4000
            mov %d0, 64
        top:
            ld.w %d3, [%a2]0
            add %d2, %d3
            addi %d0, %d0, -1
            lea %a2, [%a2]6
            jnz %d0, top
            debug
        ";
        let elf = assemble(src).unwrap();
        let observe = |mode: DispatchMode| {
            let mut sim = Simulator::new(&elf).unwrap();
            sim.set_trace_config(eager_traces());
            sim.set_dispatch(mode);
            let err = loop {
                match sim.step() {
                    Ok(_) => {}
                    Err(e) => break e,
                }
            };
            (err, sim.cpu.pc, sim.cpu.a(2), sim.stats())
        };
        let p = observe(DispatchMode::Predecoded);
        let t = observe(DispatchMode::Trace);
        assert_eq!(p, t, "fault shape diverges between predecoded and trace");
        assert!(matches!(p.0, SimError::Mem(_)));

        // Instruction budgets overshoot at most to the end of the
        // current step for block-granular cores; the trace core keeps
        // reporting correct totals under a budget that lands mid-trace.
        let budget = |mode: DispatchMode, max: u64| {
            let mut sim = Simulator::new(&elf).unwrap();
            sim.set_trace_config(eager_traces());
            sim.set_dispatch(mode);
            let _ = sim.run(max);
            sim.stats().instructions
        };
        let fine = budget(DispatchMode::Predecoded, 100);
        let fused = budget(DispatchMode::Trace, 100);
        assert!(fused >= fine, "trace core must not under-run the budget");
    }

    #[test]
    fn naive_mode_faults_identically() {
        let elf = assemble(".text\n_start: ji %a0\n").unwrap();
        for mode in [
            DispatchMode::Predecoded,
            DispatchMode::Compiled,
            DispatchMode::Naive,
        ] {
            let mut sim = Simulator::new(&elf).unwrap();
            sim.set_dispatch(mode);
            sim.cpu.set_a(0, 0x1234_0000);
            sim.step().unwrap();
            assert!(matches!(
                sim.step(),
                Err(SimError::PcInvalid { pc: 0x1234_0000 })
            ));
        }
    }

    #[test]
    fn engine_trait_drives_the_simulator() {
        let elf = assemble(".text\n_start: mov %d2, 9\nmov %d3, 1\ndebug\n").unwrap();
        let mut sim = Simulator::new(&elf).unwrap();
        assert_eq!(
            sim.run_until(Limit::Retirements(1)).unwrap(),
            StopCause::LimitReached
        );
        assert_eq!(sim.engine_stats().retired, 1);
        assert_eq!(
            sim.run_until(Limit::Cycles(u64::MAX)).unwrap(),
            StopCause::Halted
        );
        assert_eq!(sim.read_reg_index(2), 9, "flat index 2 = d2");

        sim.write_reg_index(16, 0x77);
        assert_eq!(sim.cpu.a(0), 0x77, "flat index 16 = a0");

        let before = sim.engine_stats();
        sim.reset();
        assert_eq!(sim.cycle(), 0);
        assert!(!sim.is_halted());
        assert!(before.cycles > 0);
        assert_eq!(
            sim.run_until(Limit::Cycles(u64::MAX)).unwrap(),
            StopCause::Halted
        );
        assert_eq!(
            sim.engine_stats(),
            before,
            "reset + rerun reproduces the run"
        );
    }
}

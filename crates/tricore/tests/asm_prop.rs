//! Property tests for the assembler: generated straight-line programs
//! must assemble, decode back to the intended instruction sequence, and
//! execute on the golden model without faulting.

use cabt_tricore::asm::assemble;
use cabt_tricore::encode::decode_section;
use cabt_tricore::isa::Instr;
use proptest::prelude::*;
use std::fmt::Write as _;

/// One line of straight-line assembly plus the instruction it must
/// decode to.
#[derive(Debug, Clone)]
struct Line {
    text: String,
    check: fn(&Instr) -> bool,
}

fn line() -> impl Strategy<Value = Line> {
    let dr = 0u8..16;
    let ar = 0u8..16;
    prop_oneof![
        (dr.clone(), -64i32..=63).prop_map(|(d, v)| Line {
            text: format!("mov %d{d}, {v}"),
            check: |i| matches!(i, Instr::Mov16 { .. }),
        }),
        (dr.clone(), 64i32..32767).prop_map(|(d, v)| Line {
            text: format!("mov %d{d}, {v}"),
            check: |i| matches!(i, Instr::Mov { .. }),
        }),
        (dr.clone(), 0i32..65536).prop_map(|(d, v)| Line {
            text: format!("movh %d{d}, {v}"),
            check: |i| matches!(i, Instr::Movh { .. }),
        }),
        (dr.clone(), dr.clone(), dr.clone()).prop_map(|(d, s1, s2)| Line {
            text: format!("add %d{d}, %d{s1}, %d{s2}"),
            check: |i| matches!(i, Instr::Bin { .. }),
        }),
        (dr.clone(), dr.clone()).prop_map(|(d, s)| Line {
            text: format!("sub %d{d}, %d{s}"),
            check: |i| matches!(i, Instr::Sub16 { .. }),
        }),
        (dr.clone(), dr.clone(), -256i32..=255).prop_map(|(d, s, v)| Line {
            text: format!("xor %d{d}, %d{s}, {v}"),
            check: |i| matches!(i, Instr::BinI { .. }),
        }),
        (ar.clone(), ar.clone(), -512i32..=511).prop_map(|(a, b, v)| Line {
            text: format!("lea %a{a}, [%a{b}]{v}"),
            check: |i| matches!(i, Instr::Lea { .. }),
        }),
        (dr.clone(), dr.clone(), dr.clone(), dr.clone()).prop_map(|(d, a, s1, s2)| Line {
            text: format!("madd %d{d}, %d{a}, %d{s1}, %d{s2}"),
            check: |i| matches!(i, Instr::Madd { .. }),
        }),
        (dr, 0u8..16).prop_map(|(d, a)| Line {
            text: format!("mov.a %a{a}, %d{d}"),
            check: |i| matches!(i, Instr::MovA { .. }),
        }),
    ]
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(96))]

    #[test]
    fn straightline_programs_assemble_and_decode(lines in proptest::collection::vec(line(), 1..40)) {
        let mut src = String::from(".text\n_start:\n");
        for l in &lines {
            let _ = writeln!(src, "    {}", l.text);
        }
        src.push_str("    debug\n");

        let elf = assemble(&src).expect("assembles");
        let text = elf.section(".text").expect("text section");
        let decoded = decode_section(text.addr, &text.data).expect("decodes");
        prop_assert_eq!(decoded.len(), lines.len() + 1);
        for (ir, l) in decoded.iter().zip(&lines) {
            prop_assert!((l.check)(&ir.1), "`{}` decoded to `{}`", l.text, ir.1);
        }

        // Instruction addresses must be contiguous per encoded sizes.
        let mut expect = text.addr;
        for (addr, i) in &decoded {
            prop_assert_eq!(*addr, expect);
            expect += i.size();
        }

        // The program must run to the halt on the golden model.
        let mut sim = cabt_tricore::sim::Simulator::new(&elf).expect("loads");
        let stats = sim.run(10_000).expect("halts");
        prop_assert_eq!(stats.instructions as usize, lines.len() + 1);
    }

    #[test]
    fn assembled_cycles_match_translated_generation(seeds in proptest::collection::vec(0u32..100, 2..12)) {
        // Random dependent ALU chain: translation at the static level
        // generates exactly the golden cycle count for one block
        // (cache disabled on the reference side).
        let mut src = String::from(".text\n_start:\n    mov %d1, 7\n");
        for s in &seeds {
            let _ = writeln!(src, "    add %d1, %d1, {}", s % 128);
            let _ = writeln!(src, "    xor %d2, %d1, %d2");
        }
        src.push_str("    debug\n");
        let elf = assemble(&src).expect("assembles");

        let mut gold = cabt_tricore::sim::Simulator::new(&elf).expect("loads");
        gold.disable_icache();
        let gstats = gold.run(100_000).expect("halts");

        let t = cabt_core::Translator::new(cabt_core::DetailLevel::Static)
            .translate(&elf)
            .expect("translates");
        let mut p =
            cabt_platform::Platform::new(&t, cabt_platform::PlatformConfig::unlimited())
                .expect("builds");
        let stats = p.run(10_000_000).expect("halts");
        prop_assert_eq!(stats.total_generated(), gstats.cycles);
    }
}

//! Randomized property tests for the assembler: generated
//! straight-line programs must assemble, decode back to the intended
//! instruction sequence, and execute on the golden model without
//! faulting. Cases come from the workspace's deterministic PRNG
//! (the `proptest` crate is unavailable in the offline build).

use cabt_isa::rng::Pcg32;
use cabt_tricore::asm::assemble;
use cabt_tricore::encode::decode_section;
use cabt_tricore::isa::Instr;
use std::fmt::Write as _;

/// One line of straight-line assembly plus the instruction it must
/// decode to.
#[derive(Debug, Clone)]
struct Line {
    text: String,
    check: fn(&Instr) -> bool,
}

fn line(rng: &mut Pcg32) -> Line {
    let dr = |rng: &mut Pcg32| rng.random_range(0..16);
    let ar = |rng: &mut Pcg32| rng.random_range(0..16);
    match rng.below(9) {
        0 => {
            let (d, v) = (dr(rng), rng.random_range(0..128) as i32 - 64);
            Line {
                text: format!("mov %d{d}, {v}"),
                check: |i| matches!(i, Instr::Mov16 { .. }),
            }
        }
        1 => {
            let (d, v) = (dr(rng), rng.random_range(64..32767));
            Line {
                text: format!("mov %d{d}, {v}"),
                check: |i| matches!(i, Instr::Mov { .. }),
            }
        }
        2 => {
            let (d, v) = (dr(rng), rng.random_range(0..65536));
            Line {
                text: format!("movh %d{d}, {v}"),
                check: |i| matches!(i, Instr::Movh { .. }),
            }
        }
        3 => {
            let (d, s1, s2) = (dr(rng), dr(rng), dr(rng));
            Line {
                text: format!("add %d{d}, %d{s1}, %d{s2}"),
                check: |i| matches!(i, Instr::Bin { .. }),
            }
        }
        4 => {
            let (d, s) = (dr(rng), dr(rng));
            Line {
                text: format!("sub %d{d}, %d{s}"),
                check: |i| matches!(i, Instr::Sub16 { .. }),
            }
        }
        5 => {
            let (d, s, v) = (dr(rng), dr(rng), rng.random_range(0..512) as i32 - 256);
            Line {
                text: format!("xor %d{d}, %d{s}, {v}"),
                check: |i| matches!(i, Instr::BinI { .. }),
            }
        }
        6 => {
            let (a, b, v) = (ar(rng), ar(rng), rng.random_range(0..1024) as i32 - 512);
            Line {
                text: format!("lea %a{a}, [%a{b}]{v}"),
                check: |i| matches!(i, Instr::Lea { .. }),
            }
        }
        7 => {
            let (d, a, s1, s2) = (dr(rng), dr(rng), dr(rng), dr(rng));
            Line {
                text: format!("madd %d{d}, %d{a}, %d{s1}, %d{s2}"),
                check: |i| matches!(i, Instr::Madd { .. }),
            }
        }
        _ => {
            let (d, a) = (dr(rng), ar(rng));
            Line {
                text: format!("mov.a %a{a}, %d{d}"),
                check: |i| matches!(i, Instr::MovA { .. }),
            }
        }
    }
}

#[test]
fn straightline_programs_assemble_and_decode() {
    let mut rng = Pcg32::seed_from_u64(0x0a51);
    for _ in 0..96 {
        let lines: Vec<Line> = (0..rng.random_range(1..40))
            .map(|_| line(&mut rng))
            .collect();
        let mut src = String::from(".text\n_start:\n");
        for l in &lines {
            let _ = writeln!(src, "    {}", l.text);
        }
        src.push_str("    debug\n");

        let elf = assemble(&src).expect("assembles");
        let text = elf.section(".text").expect("text section");
        let decoded = decode_section(text.addr, &text.data).expect("decodes");
        assert_eq!(decoded.len(), lines.len() + 1);
        for (ir, l) in decoded.iter().zip(&lines) {
            assert!((l.check)(&ir.1), "`{}` decoded to `{}`", l.text, ir.1);
        }

        // Instruction addresses must be contiguous per encoded sizes.
        let mut expect = text.addr;
        for (addr, i) in &decoded {
            assert_eq!(*addr, expect);
            expect += i.size();
        }

        // The program must run to the halt on the golden model.
        let mut sim = cabt_tricore::sim::Simulator::new(&elf).expect("loads");
        let stats = sim.run(10_000).expect("halts");
        assert_eq!(stats.instructions as usize, lines.len() + 1);
    }
}

#[test]
fn assembled_programs_run_identically_in_both_dispatch_modes() {
    // The same generated programs, executed by the pre-decoded and the
    // naive dispatch core: every architectural observable must match.
    use cabt_tricore::sim::{DispatchMode, Simulator};
    let mut rng = Pcg32::seed_from_u64(0x0a52);
    for _ in 0..48 {
        let lines: Vec<Line> = (0..rng.random_range(1..40))
            .map(|_| line(&mut rng))
            .collect();
        let mut src = String::from(".text\n_start:\n");
        for l in &lines {
            let _ = writeln!(src, "    {}", l.text);
        }
        src.push_str("    debug\n");
        let elf = assemble(&src).expect("assembles");

        let mut fast = Simulator::new(&elf).expect("loads");
        let mut naive = Simulator::new(&elf).expect("loads");
        naive.set_dispatch(DispatchMode::Naive);
        let sf = fast.run(10_000).expect("halts");
        let sn = naive.run(10_000).expect("halts");
        assert_eq!(sf, sn, "stats diverged");
        for i in 0..16 {
            assert_eq!(fast.cpu.d(i), naive.cpu.d(i), "d{i}");
            assert_eq!(fast.cpu.a(i), naive.cpu.a(i), "a{i}");
        }
    }
}

//! The cycle-accurate static binary translator — the paper's primary
//! contribution (Schnerr, Bringmann, Rosenstiel, DATE 2005).
//!
//! [`Translator`] consumes an ELF32 image of source-processor
//! (TriCore-like) object code and produces a VLIW target program whose
//! execution *generates the source processor's clock cycles* for the
//! attached SoC hardware, following Fig. 1 of the paper:
//!
//! 1. object-file ingestion and decoding into intermediate code
//!    ([`mod@cfg`]),
//! 2. basic-block construction ([`mod@cfg`]),
//! 3. base-address analysis — classifying loads/stores as memory or I/O
//!    and validating static remapping ([`baseaddr`]),
//! 4. static cycle calculation per basic block, modelling the source
//!    pipeline ([`cycles`]),
//! 5. insertion of cycle-generation code (Fig. 2) and of dynamic
//!    correction code for branch prediction and instruction caches
//!    (Fig. 3/4) ([`expand`], [`icache`]),
//! 6. further transformations of the intermediate code: dual-issue
//!    packing into execute packets, functional-unit assignment and
//!    register binding ([`sched`], [`regbind`]).
//!
//! The translation detail level is selected with [`DetailLevel`],
//! mirroring §3.2 of the paper:
//!
//! * [`DetailLevel::Functional`] — plain binary translation, no cycle
//!   information (the "C6x w/o cycle info" bars of Fig. 5),
//! * [`DetailLevel::Static`] — purely static prediction,
//! * [`DetailLevel::BranchPredict`] — dynamic improvement of the static
//!   prediction (branch-prediction modelling),
//! * [`DetailLevel::Cache`] — additional dynamic inclusion of the
//!   instruction cache.
//!
//! # Example
//!
//! ```
//! use cabt_core::{DetailLevel, Translator};
//! use cabt_tricore::asm::assemble;
//!
//! let elf = assemble(".text\n_start: mov %d2, 3\n add %d2, %d2\n debug\n")?;
//! let translated = Translator::new(DetailLevel::Static).translate(&elf)?;
//! assert!(translated.packets.len() > 2);
//! assert_eq!(translated.blocks.len(), 1); // one basic block
//! # Ok::<(), Box<dyn std::error::Error>>(())
//! ```

pub mod baseaddr;
pub mod cfg;
pub mod cycles;
pub mod expand;
pub mod icache;
pub mod regbind;
pub mod sched;
pub mod translate;

use std::fmt;

pub use translate::{BlockInfo, Translated, TranslationStats, Translator};

/// Detail level of the generated cycle accuracy (§3.2 of the paper).
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub enum DetailLevel {
    /// Functional translation only — no cycle-generation code.
    Functional,
    /// Purely static per-basic-block cycle prediction.
    Static,
    /// Static prediction plus dynamic branch-prediction correction.
    BranchPredict,
    /// Branch prediction plus dynamic instruction-cache simulation.
    Cache,
}

impl DetailLevel {
    /// All levels in increasing accuracy order.
    pub const ALL: [DetailLevel; 4] = [
        DetailLevel::Functional,
        DetailLevel::Static,
        DetailLevel::BranchPredict,
        DetailLevel::Cache,
    ];

    /// True if cycle-generation code is emitted at all.
    pub fn generates_cycles(self) -> bool {
        self != DetailLevel::Functional
    }

    /// True if dynamic correction code (correction counter + correction
    /// block) is emitted.
    pub fn corrects_dynamically(self) -> bool {
        matches!(self, DetailLevel::BranchPredict | DetailLevel::Cache)
    }

    /// True if instruction-cache analysis code is emitted.
    pub fn simulates_icache(self) -> bool {
        self == DetailLevel::Cache
    }
}

impl fmt::Display for DetailLevel {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let s = match self {
            DetailLevel::Functional => "functional",
            DetailLevel::Static => "static",
            DetailLevel::BranchPredict => "branch-predict",
            DetailLevel::Cache => "cache",
        };
        f.write_str(s)
    }
}

/// Cycle-generation granularity: per basic block (normal operation) or
/// per instruction (the second translation used by the debug interface,
/// §3.5 of the paper).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Default)]
pub enum Granularity {
    /// One cycle-generation burst per basic block (Fig. 2).
    #[default]
    BasicBlock,
    /// One burst per instruction — slower but single-steppable.
    PerInstruction,
}

/// Errors raised during translation.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum TranslateError {
    /// The input image has no `.text` section.
    NoText,
    /// The input image's machine number is not the source processor's.
    WrongMachine {
        /// Machine number found.
        found: u16,
    },
    /// The source code section did not decode.
    Decode {
        /// Address of the undecodable instruction.
        addr: u32,
    },
    /// A branch target lies outside the decoded program.
    BadBranchTarget {
        /// Address of the branching instruction.
        from: u32,
        /// The target address.
        to: u32,
    },
    /// The configured I-cache geometry is not supported by the generated
    /// correction code (only 1- and 2-way caches are).
    UnsupportedCache {
        /// The requested associativity.
        ways: u32,
    },
    /// Internal scheduling failure (a bug if it ever escapes).
    Sched(String),
}

impl fmt::Display for TranslateError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            TranslateError::NoText => write!(f, "input image has no .text section"),
            TranslateError::WrongMachine { found } => {
                write!(
                    f,
                    "input image is for machine {found}, expected TriCore (44)"
                )
            }
            TranslateError::Decode { addr } => {
                write!(f, "cannot decode source instruction at {addr:#010x}")
            }
            TranslateError::BadBranchTarget { from, to } => {
                write!(
                    f,
                    "branch at {from:#010x} targets {to:#010x}, outside the program"
                )
            }
            TranslateError::UnsupportedCache { ways } => {
                write!(
                    f,
                    "cache correction code supports 1- or 2-way caches, not {ways}-way"
                )
            }
            TranslateError::Sched(msg) => write!(f, "scheduling failure: {msg}"),
        }
    }
}

impl std::error::Error for TranslateError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn detail_level_predicates() {
        assert!(!DetailLevel::Functional.generates_cycles());
        assert!(DetailLevel::Static.generates_cycles());
        assert!(!DetailLevel::Static.corrects_dynamically());
        assert!(DetailLevel::BranchPredict.corrects_dynamically());
        assert!(!DetailLevel::BranchPredict.simulates_icache());
        assert!(DetailLevel::Cache.simulates_icache());
        assert!(DetailLevel::Cache.corrects_dynamically());
    }

    #[test]
    fn detail_levels_are_ordered() {
        assert!(DetailLevel::Functional < DetailLevel::Static);
        assert!(DetailLevel::Static < DetailLevel::BranchPredict);
        assert!(DetailLevel::BranchPredict < DetailLevel::Cache);
    }

    #[test]
    fn display_names() {
        assert_eq!(DetailLevel::Cache.to_string(), "cache");
        assert_eq!(DetailLevel::BranchPredict.to_string(), "branch-predict");
    }
}

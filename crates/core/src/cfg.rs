//! Intermediate code construction and basic-block building (the first
//! two grey boxes of the paper's Fig. 1).
//!
//! The object code is decoded into a list of intermediate instructions
//! (each carrying its original address), then partitioned into basic
//! blocks through the workspace-wide block layer
//! ([`cabt_exec::blocks::BlockMap`]) — the same partition algorithm
//! the block-compiled execution engines run over their pre-decoded
//! tables, so the translator and the simulators agree on block
//! structure by construction. Leaders are the program entry, every
//! direct branch target, every instruction following a control
//! transfer, and every symbol of type `Func` in the ELF symbol table
//! (so that indirectly reached routines are block-aligned).

use crate::{Granularity, TranslateError};
use cabt_exec::blocks::{BlockMap, UnitFlow};
use cabt_isa::elf::{ElfFile, SectionKind, SymbolKind};
use cabt_tricore::encode::decode_section;
use cabt_tricore::isa::Instr;
use std::collections::{BTreeMap, BTreeSet};

/// One intermediate instruction: the decoded source instruction plus its
/// original address.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct IrInstr {
    /// Address in the source program.
    pub addr: u32,
    /// The decoded instruction.
    pub instr: Instr,
}

/// A basic block of the source program.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Block {
    /// Index of this block in [`Cfg::blocks`].
    pub id: usize,
    /// Address of the first instruction.
    pub start: u32,
    /// Address one past the last instruction.
    pub end: u32,
    /// The instructions of the block in program order.
    pub instrs: Vec<IrInstr>,
}

impl Block {
    /// The control-transfer instruction terminating the block, if the
    /// block ends in one (otherwise the block falls through).
    pub fn terminator(&self) -> Option<&IrInstr> {
        self.instrs.last().filter(|i| i.instr.is_control())
    }
}

/// The control-flow graph: blocks in ascending address order.
#[derive(Debug, Clone)]
pub struct Cfg {
    /// Basic blocks in ascending start-address order.
    pub blocks: Vec<Block>,
    /// Program entry address.
    pub entry: u32,
    block_of_addr: BTreeMap<u32, usize>,
}

impl Cfg {
    /// Builds the CFG for the `.text` section of `elf`.
    ///
    /// With [`Granularity::PerInstruction`] every instruction becomes its
    /// own block (the debug translation of §3.5).
    ///
    /// # Errors
    ///
    /// Returns [`TranslateError`] if the image has no text section, uses
    /// the wrong machine number, fails to decode, or contains a direct
    /// branch out of the program.
    pub fn build(elf: &ElfFile, granularity: Granularity) -> Result<Self, TranslateError> {
        if elf.machine != cabt_isa::elf::EM_TRICORE {
            return Err(TranslateError::WrongMachine { found: elf.machine });
        }
        let mut program: Vec<IrInstr> = Vec::new();
        let mut any_text = false;
        for s in &elf.sections {
            if s.kind == SectionKind::Text {
                any_text = true;
                let decoded = decode_section(s.addr, &s.data)
                    .map_err(|_| TranslateError::Decode { addr: s.addr })?;
                program.extend(
                    decoded
                        .into_iter()
                        .map(|(addr, instr)| IrInstr { addr, instr }),
                );
            }
        }
        if !any_text {
            return Err(TranslateError::NoText);
        }
        program.sort_by_key(|i| i.addr);

        // Validate every direct branch before partitioning: targets must
        // land on decoded instructions.
        let index_of: BTreeMap<u32, u32> = program
            .iter()
            .enumerate()
            .map(|(i, ir)| (ir.addr, i as u32))
            .collect();
        for ir in &program {
            if ir.instr.is_control() {
                if let Some(t) = ir.instr.target(ir.addr) {
                    if !index_of.contains_key(&t) {
                        return Err(TranslateError::BadBranchTarget {
                            from: ir.addr,
                            to: t,
                        });
                    }
                }
            }
        }

        // Describe each instruction's control-flow role (the shared
        // `Instr::unit_flow` classifier — the same one the
        // block-compiled engine uses) and hand the partition to the
        // shared block layer.
        let units: Vec<UnitFlow> = program
            .iter()
            .map(|ir| {
                let target = ir
                    .instr
                    .target(ir.addr)
                    .and_then(|t| index_of.get(&t).copied());
                ir.instr.unit_flow(target)
            })
            .collect();
        let contiguous = |i: usize| match (program.get(i), program.get(i + 1)) {
            (Some(a), Some(b)) => a.addr + a.instr.size() == b.addr,
            _ => false,
        };
        let mut entries: BTreeSet<u32> = BTreeSet::new();
        if let Some(&e) = index_of.get(&elf.entry) {
            entries.insert(e);
        }
        for sym in &elf.symbols {
            if sym.kind == SymbolKind::Func {
                if let Some(&i) = index_of.get(&sym.value) {
                    entries.insert(i);
                }
            }
        }
        let map = BlockMap::build(
            &units,
            contiguous,
            entries,
            granularity == Granularity::PerInstruction,
        );

        let mut blocks: Vec<Block> = Vec::with_capacity(map.len());
        let mut block_of_addr = BTreeMap::new();
        for span in &map.blocks {
            let instrs: Vec<IrInstr> = program[span.first as usize..span.end() as usize].to_vec();
            let first = instrs.first().expect("blocks are non-empty");
            let last = instrs.last().expect("blocks are non-empty");
            let id = blocks.len();
            block_of_addr.insert(first.addr, id);
            blocks.push(Block {
                id,
                start: first.addr,
                end: last.addr + last.instr.size(),
                instrs,
            });
        }
        Ok(Cfg {
            blocks,
            entry: elf.entry,
            block_of_addr,
        })
    }

    /// The block starting exactly at `addr`.
    pub fn block_at(&self, addr: u32) -> Option<&Block> {
        self.block_of_addr.get(&addr).map(|&i| &self.blocks[i])
    }

    /// The block containing `addr`.
    pub fn block_containing(&self, addr: u32) -> Option<&Block> {
        self.block_of_addr
            .range(..=addr)
            .next_back()
            .map(|(_, &i)| &self.blocks[i])
            .filter(|b| addr < b.end)
    }

    /// Total number of source instructions.
    pub fn instr_count(&self) -> usize {
        self.blocks.iter().map(|b| b.instrs.len()).sum()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use cabt_tricore::asm::assemble;

    fn cfg(src: &str) -> Cfg {
        Cfg::build(&assemble(src).unwrap(), Granularity::BasicBlock).unwrap()
    }

    #[test]
    fn straightline_is_one_block() {
        let g = cfg(".text\n_start: mov %d0, 1\nmov %d1, 2\ndebug\n");
        assert_eq!(g.blocks.len(), 1);
        assert_eq!(g.blocks[0].instrs.len(), 3);
        assert!(g.blocks[0].terminator().is_some());
    }

    #[test]
    fn branch_target_and_fallthrough_start_blocks() {
        let g = cfg("
            .text
        _start:
            mov %d0, 5
        top:
            addi %d0, %d0, -1
            jnz %d0, top
            debug
        ");
        // Blocks: [_start..top), [top..jnz], [debug]
        assert_eq!(g.blocks.len(), 3);
        assert_eq!(g.blocks[1].instrs.len(), 2);
        assert!(g.block_at(g.blocks[1].start).is_some());
    }

    #[test]
    fn call_splits_blocks_and_function_symbols_lead() {
        let g = cfg("
            .text
        _start:
            call f
            debug
        f:
            mov %d1, 1
            ret
        ");
        assert_eq!(g.blocks.len(), 3);
        // f is a leader via both the call target and the Func symbol.
        let f_block = g.blocks.iter().find(|b| b.instrs.len() == 2).unwrap();
        assert!(matches!(f_block.terminator().unwrap().instr, Instr::Ret16));
    }

    #[test]
    fn per_instruction_granularity_splits_everything() {
        let src = ".text\n_start: mov %d0, 1\nmov %d1, 2\nadd %d0, %d1\ndebug\n";
        let bb = Cfg::build(&assemble(src).unwrap(), Granularity::BasicBlock).unwrap();
        let pi = Cfg::build(&assemble(src).unwrap(), Granularity::PerInstruction).unwrap();
        assert_eq!(bb.blocks.len(), 1);
        assert_eq!(pi.blocks.len(), 4);
        assert_eq!(pi.instr_count(), bb.instr_count());
    }

    #[test]
    fn block_containing_finds_interior_addresses() {
        let g = cfg(".text\n_start: mov %d0, 1\nmov %d1, 2\ndebug\n");
        let b = &g.blocks[0];
        let second = b.instrs[1].addr;
        assert_eq!(g.block_containing(second).unwrap().id, b.id);
        assert!(g.block_containing(b.end).is_none());
    }

    #[test]
    fn rejects_branch_outside_program() {
        let elf = assemble(".text\n_start: j _start\n").unwrap();
        // Corrupt: re-assemble with a jump to a bogus absolute address.
        let bad = assemble(".text\n_start: j 0x80001000\nnop\n");
        // 0x80001000 is beyond this two-instruction program.
        let elf2 = bad.unwrap();
        assert!(matches!(
            Cfg::build(&elf2, Granularity::BasicBlock),
            Err(TranslateError::BadBranchTarget { .. })
        ));
        drop(elf);
    }

    #[test]
    fn rejects_wrong_machine() {
        let mut elf = assemble(".text\n_start: debug\n").unwrap();
        elf.machine = 999;
        assert!(matches!(
            Cfg::build(&elf, Granularity::BasicBlock),
            Err(TranslateError::WrongMachine { found: 999 })
        ));
    }

    #[test]
    fn rejects_no_text() {
        let elf = cabt_isa::elf::ElfFile::new(cabt_isa::elf::EM_TRICORE, 0);
        assert!(matches!(
            Cfg::build(&elf, Granularity::BasicBlock),
            Err(TranslateError::NoText)
        ));
    }

    #[test]
    fn loop_instruction_terminates_block() {
        let g = cfg("
            .text
        _start:
            mov %d0, 3
            mov.a %a2, %d0
        body:
            nop
            loop %a2, body
            debug
        ");
        let body = g.block_at(g.blocks[1].start).unwrap();
        assert!(matches!(
            body.terminator().unwrap().instr,
            Instr::Loop { .. }
        ));
    }
}

//! Static cycle calculation of a basic block (§3.3 of the paper).
//!
//! "In order to predict pipeline effects and the effects of super
//! scalarity statically, modeling the pipeline per basic block becomes
//! necessary" — we feed each block's instructions through the *same*
//! incremental timing machine the golden model uses
//! ([`cabt_tricore::arch::TimingModel`]), starting from a fresh pipeline
//! state, and account conditional control transfers with their
//! guaranteed minimum cost. The dynamic correction code of §3.4 later
//! adds the outcome-dependent extra cycles at run time.

use crate::cfg::Block;
use cabt_tricore::arch::{TimingModel, TimingState};

/// Static cycle prediction for one basic block.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct BlockCycles {
    /// Predicted cycles (`n` in Fig. 2), including the terminator's
    /// minimum cost.
    pub cycles: u32,
    /// Extra cycles the correction code must add when the terminating
    /// conditional branch goes against its static prediction — `None`
    /// when the block does not end in a conditional.
    pub taken_extra: Option<u32>,
    /// Extra cycles when the conditional is *not* taken.
    pub nottaken_extra: Option<u32>,
}

/// Computes the static prediction for `block`.
///
/// The returned `taken_extra`/`nottaken_extra` are exactly what the
/// paper's inserted branch-prediction code adds to the cycle correction
/// counter (§3.4.1).
pub fn block_cycles(model: &TimingModel, block: &Block) -> BlockCycles {
    let mut st = TimingState::new();
    let mut taken_extra = None;
    let mut nottaken_extra = None;
    for ir in &block.instrs {
        model.step(&mut st, &ir.instr, None);
        if ir.instr.is_conditional() {
            taken_extra = Some(model.timing().control_extra(&ir.instr, true));
            nottaken_extra = Some(model.timing().control_extra(&ir.instr, false));
        }
    }
    BlockCycles {
        cycles: st.cycles() as u32,
        taken_extra,
        nottaken_extra,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::cfg::Cfg;
    use crate::Granularity;
    use cabt_tricore::arch::Timing;
    use cabt_tricore::asm::assemble;

    fn blocks(src: &str) -> (TimingModel, Cfg) {
        let cfg = Cfg::build(&assemble(src).unwrap(), Granularity::BasicBlock).unwrap();
        (TimingModel::new(Timing::default()), cfg)
    }

    #[test]
    fn serial_dependent_code_counts_each_cycle() {
        let (m, cfg) =
            blocks(".text\n_start: mov %d1, 1\nadd %d2, %d1, %d1\nadd %d3, %d2, %d2\ndebug\n");
        let bc = block_cycles(&m, &cfg.blocks[0]);
        // Three dependent IP ops + debug (1 cycle).
        assert_eq!(bc.cycles, 4);
        assert_eq!(bc.taken_extra, None);
    }

    #[test]
    fn dual_issue_shortens_blocks() {
        // Independent IP + LS pairs should dual-issue.
        let (m, cfg) = blocks(
            ".text\n_start: add %d1, %d2, %d3\nlea %a1, [%a2]4\nadd %d4, %d5, %d6\nlea %a3, [%a4]8\ndebug\n",
        );
        let bc = block_cycles(&m, &cfg.blocks[0]);
        assert_eq!(bc.cycles, 2 + 1, "two dual-issued pairs plus debug");
    }

    #[test]
    fn conditional_terminator_reports_extras() {
        let (m, cfg) = blocks(
            "
            .text
        _start:
            mov %d0, 5
        top:
            addi %d0, %d0, -1
            jnz %d0, top
            debug
        ",
        );
        let top = &cfg.blocks[1];
        let bc = block_cycles(&m, top);
        // Backward branch: predicted taken (min 2). Extra on fallthrough.
        assert_eq!(bc.taken_extra, Some(0));
        assert_eq!(bc.nottaken_extra, Some(1));
        // addi (1) + branch min (2)
        assert_eq!(bc.cycles, 3);
    }

    #[test]
    fn forward_branch_predicted_not_taken() {
        let (m, cfg) = blocks(
            "
            .text
        _start:
            jeq %d0, %d1, skip
            nop
        skip:
            debug
        ",
        );
        let bc = block_cycles(&m, &cfg.blocks[0]);
        let t = Timing::default();
        assert_eq!(bc.cycles, t.cond_nottaken_correct);
        assert_eq!(
            bc.taken_extra,
            Some(t.cond_mispredict - t.cond_nottaken_correct)
        );
        assert_eq!(bc.nottaken_extra, Some(0));
    }

    #[test]
    fn load_use_stall_included() {
        let (m, cfg) = blocks(".text\n_start: ld.w %d1, [%a2]0\nadd %d2, %d1, %d1\ndebug\n");
        let bc = block_cycles(&m, &cfg.blocks[0]);
        // ld (1) + stall (1) + add (1) + debug (1)
        assert_eq!(bc.cycles, 4);
    }

    #[test]
    fn per_block_prediction_sums_to_dynamic_for_straightline() {
        // For a program without conditionals the sum of static block
        // predictions equals the golden model's cycle count minus
        // cross-block effects; with a single block they are identical
        // (ignoring cache misses).
        let src =
            ".text\n_start: mov %d1, 3\nmov %d2, 4\nmul %d3, %d1, %d2\nadd %d4, %d3, %d1\ndebug\n";
        let (m, cfg) = blocks(src);
        let bc = block_cycles(&m, &cfg.blocks[0]);
        let elf = assemble(src).unwrap();
        let mut sim = cabt_tricore::sim::Simulator::new(&elf).unwrap();
        sim.disable_icache();
        let stats = sim.run(100).unwrap();
        assert_eq!(bc.cycles as u64, stats.cycles);
    }
}

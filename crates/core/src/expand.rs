//! Expansion of source instructions into target operations (the
//! behavioural half of code generation; control transfers and the
//! cycle-generation wrappers are emitted by the translator driver).
//!
//! Each source instruction expands into one to four target operations
//! over the fixed register binding of [`crate::regbind`]. Immediates
//! that do not fit the target's short forms are materialized through the
//! rotating temporary pool.

use crate::regbind::{areg, dreg, TempAlloc};
use crate::sched::TOp;
use cabt_tricore::isa::{BinOp, Instr, LdKind, StKind};
use cabt_vliw::isa::{Op, Reg, Width};

/// Expands `instr` (which must not be a control transfer) into target
/// operations, appending to `out`.
///
/// # Panics
///
/// Panics if called with a control-transfer instruction — the translator
/// driver handles those (they need block context).
pub fn expand_instr(instr: &Instr, temps: &mut TempAlloc, volatile_mem: bool, out: &mut Vec<TOp>) {
    assert!(
        !instr.is_control(),
        "control transfers are lowered by the driver"
    );
    let mem = |t: TOp| if volatile_mem { t.volatile() } else { t };
    match *instr {
        Instr::Nop16 | Instr::Nop => {}
        Instr::Debug16 | Instr::Ret16 => unreachable!("control handled by driver"),
        Instr::Mov16 { d, imm7 } => out.push(TOp::new(Op::Mvk {
            d: dreg(d),
            imm16: imm7 as i16,
        })),
        Instr::Mov { d, imm16 } => out.push(TOp::new(Op::Mvk { d: dreg(d), imm16 })),
        Instr::Movh { d, imm16 } => {
            out.push(TOp::new(Op::Mvk {
                d: dreg(d),
                imm16: 0,
            }));
            out.push(TOp::new(Op::Mvkh { d: dreg(d), imm16 }));
        }
        Instr::MovhA { a, imm16 } => {
            out.push(TOp::new(Op::Mvk {
                d: areg(a),
                imm16: 0,
            }));
            out.push(TOp::new(Op::Mvkh { d: areg(a), imm16 }));
        }
        Instr::MovRR16 { d, s } | Instr::MovRR { d, s } => {
            out.push(TOp::new(Op::Mv {
                d: dreg(d),
                s: dreg(s),
            }));
        }
        Instr::MovA { a, s } => out.push(TOp::new(Op::Mv {
            d: areg(a),
            s: dreg(s),
        })),
        Instr::MovD { d, a } => out.push(TOp::new(Op::Mv {
            d: dreg(d),
            s: areg(a),
        })),
        Instr::MovAA { a, s } => out.push(TOp::new(Op::Mv {
            d: areg(a),
            s: areg(s),
        })),
        Instr::Addi { d, s, imm16 } => add_imm(dreg(d), dreg(s), imm16 as i32, temps, out),
        Instr::Addih { d, s, imm16 } => {
            let t = temps.a();
            out.push(TOp::new(Op::Mvk { d: t, imm16: 0 }));
            out.push(TOp::new(Op::Mvkh { d: t, imm16 }));
            out.push(TOp::new(Op::Add {
                d: dreg(d),
                s1: dreg(s),
                s2: t,
            }));
        }
        Instr::Lea { a, base, off16 } => add_imm(areg(a), areg(base), off16 as i32, temps, out),
        Instr::Add16 { d, s } => {
            out.push(TOp::new(Op::Add {
                d: dreg(d),
                s1: dreg(d),
                s2: dreg(s),
            }));
        }
        Instr::Sub16 { d, s } => {
            out.push(TOp::new(Op::Sub {
                d: dreg(d),
                s1: dreg(d),
                s2: dreg(s),
            }));
        }
        Instr::Bin { op, d, s1, s2 } => {
            out.push(TOp::new(bin_op(op, dreg(d), dreg(s1), dreg(s2))));
        }
        Instr::BinI { op, d, s1, imm9 } => match op {
            BinOp::Sll => out.push(TOp::new(Op::ShlI {
                d: dreg(d),
                s1: dreg(s1),
                imm5: (imm9 as u32 & 31) as u8,
            })),
            BinOp::Srl => out.push(TOp::new(Op::ShruI {
                d: dreg(d),
                s1: dreg(s1),
                imm5: (imm9 as u32 & 31) as u8,
            })),
            BinOp::Sra => out.push(TOp::new(Op::ShrI {
                d: dreg(d),
                s1: dreg(s1),
                imm5: (imm9 as u32 & 31) as u8,
            })),
            BinOp::Add => add_imm(dreg(d), dreg(s1), imm9 as i32, temps, out),
            _ => {
                let t = temps.a();
                out.push(TOp::new(Op::Mvk { d: t, imm16: imm9 }));
                out.push(TOp::new(bin_op(op, dreg(d), dreg(s1), t)));
            }
        },
        Instr::Madd { d, acc, s1, s2 } => {
            let t = temps.a();
            out.push(TOp::new(Op::Mpy {
                d: t,
                s1: dreg(s1),
                s2: dreg(s2),
            }));
            out.push(TOp::new(Op::Add {
                d: dreg(d),
                s1: dreg(acc),
                s2: t,
            }));
        }
        Instr::Msub { d, acc, s1, s2 } => {
            let t = temps.a();
            out.push(TOp::new(Op::Mpy {
                d: t,
                s1: dreg(s1),
                s2: dreg(s2),
            }));
            out.push(TOp::new(Op::Sub {
                d: dreg(d),
                s1: dreg(acc),
                s2: t,
            }));
        }
        Instr::Ld {
            kind,
            d,
            base,
            off10,
            postinc,
        } => {
            let (w, unsigned) = ld_width(kind);
            lower_load(
                dreg(d),
                areg(base),
                off10,
                postinc,
                w,
                unsigned,
                temps,
                &mem,
                out,
            );
        }
        Instr::LdA {
            a,
            base,
            off10,
            postinc,
        } => {
            lower_load(
                areg(a),
                areg(base),
                off10,
                postinc,
                Width::W,
                false,
                temps,
                &mem,
                out,
            );
        }
        Instr::LdW16 { d, a } => {
            out.push(mem(TOp::new(Op::Ld {
                w: Width::W,
                unsigned: false,
                d: dreg(d),
                base: areg(a),
                woff: 0,
            })));
        }
        Instr::St {
            kind,
            s,
            base,
            off10,
            postinc,
        } => {
            let w = st_width(kind);
            lower_store(dreg(s), areg(base), off10, postinc, w, temps, &mem, out);
        }
        Instr::StA {
            s,
            base,
            off10,
            postinc,
        } => {
            lower_store(
                areg(s),
                areg(base),
                off10,
                postinc,
                Width::W,
                temps,
                &mem,
                out,
            );
        }
        Instr::StW16 { a, s } => {
            out.push(mem(TOp::new(Op::St {
                w: Width::W,
                s: dreg(s),
                base: areg(a),
                woff: 0,
            })));
        }
        Instr::J { .. }
        | Instr::Jl { .. }
        | Instr::Ji { .. }
        | Instr::Jli { .. }
        | Instr::Jcond { .. }
        | Instr::JcondZ { .. }
        | Instr::Loop { .. } => unreachable!("control handled by driver"),
    }
}

fn bin_op(op: BinOp, d: Reg, s1: Reg, s2: Reg) -> Op {
    match op {
        BinOp::Add => Op::Add { d, s1, s2 },
        BinOp::Sub => Op::Sub { d, s1, s2 },
        BinOp::And => Op::And { d, s1, s2 },
        BinOp::Or => Op::Or { d, s1, s2 },
        BinOp::Xor => Op::Xor { d, s1, s2 },
        BinOp::Sll => Op::Shl { d, s1, s2 },
        BinOp::Srl => Op::Shru { d, s1, s2 },
        BinOp::Sra => Op::Shr { d, s1, s2 },
        BinOp::Mul => Op::Mpy { d, s1, s2 },
        BinOp::Div => Op::Div { d, s1, s2 },
        BinOp::Rem => Op::Rem { d, s1, s2 },
    }
}

fn ld_width(kind: LdKind) -> (Width, bool) {
    match kind {
        LdKind::B => (Width::B, false),
        LdKind::Bu => (Width::B, true),
        LdKind::H => (Width::H, false),
        LdKind::Hu => (Width::H, true),
        LdKind::W => (Width::W, false),
    }
}

fn st_width(kind: StKind) -> Width {
    match kind {
        StKind::B => Width::B,
        StKind::H => Width::H,
        StKind::W => Width::W,
    }
}

/// Emits `d = s + imm`, materializing large immediates.
fn add_imm(d: Reg, s: Reg, imm: i32, temps: &mut TempAlloc, out: &mut Vec<TOp>) {
    if imm == 0 && d == s {
        return;
    }
    if (-16..=15).contains(&imm) {
        out.push(TOp::new(Op::AddI {
            d,
            s1: s,
            imm5: imm as i8,
        }));
    } else if (-32768..=32767).contains(&imm) {
        let t = if d.is_a_file() { temps.a() } else { temps.b() };
        out.push(TOp::new(Op::Mvk {
            d: t,
            imm16: imm as i16,
        }));
        out.push(TOp::new(Op::Add { d, s1: s, s2: t }));
    } else {
        let t = if d.is_a_file() { temps.a() } else { temps.b() };
        out.push(TOp::new(Op::Mvk {
            d: t,
            imm16: (imm & 0xffff) as i16,
        }));
        out.push(TOp::new(Op::Mvkh {
            d: t,
            imm16: ((imm as u32) >> 16) as u16,
        }));
        out.push(TOp::new(Op::Add { d, s1: s, s2: t }));
    }
}

#[allow(clippy::too_many_arguments)]
fn lower_load(
    d: Reg,
    base: Reg,
    off10: i16,
    postinc: bool,
    w: Width,
    unsigned: bool,
    temps: &mut TempAlloc,
    mem: &impl Fn(TOp) -> TOp,
    out: &mut Vec<TOp>,
) {
    let off = if postinc { 0 } else { off10 as i32 };
    if off % w.bytes() as i32 == 0 {
        out.push(mem(TOp::new(Op::Ld {
            w,
            unsigned,
            d,
            base,
            woff: (off / w.bytes() as i32) as i16,
        })));
    } else {
        let t = temps.b();
        add_imm(t, base, off, temps, out);
        out.push(mem(TOp::new(Op::Ld {
            w,
            unsigned,
            d,
            base: t,
            woff: 0,
        })));
    }
    if postinc {
        add_imm(base, base, off10 as i32, temps, out);
    }
}

#[allow(clippy::too_many_arguments)]
fn lower_store(
    s: Reg,
    base: Reg,
    off10: i16,
    postinc: bool,
    w: Width,
    temps: &mut TempAlloc,
    mem: &impl Fn(TOp) -> TOp,
    out: &mut Vec<TOp>,
) {
    let off = if postinc { 0 } else { off10 as i32 };
    if off % w.bytes() as i32 == 0 {
        out.push(mem(TOp::new(Op::St {
            w,
            s,
            base,
            woff: (off / w.bytes() as i32) as i16,
        })));
    } else {
        let t = temps.b();
        add_imm(t, base, off, temps, out);
        out.push(mem(TOp::new(Op::St {
            w,
            s,
            base: t,
            woff: 0,
        })));
    }
    if postinc {
        add_imm(base, base, off10 as i32, temps, out);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use cabt_tricore::isa::{AReg, DReg};

    fn expand(i: Instr) -> Vec<TOp> {
        let mut t = TempAlloc::new();
        let mut out = Vec::new();
        expand_instr(&i, &mut t, false, &mut out);
        out
    }

    #[test]
    fn mov_forms() {
        let ops = expand(Instr::Mov16 {
            d: DReg(1),
            imm7: -3,
        });
        assert_eq!(ops.len(), 1);
        assert!(matches!(ops[0].op, Op::Mvk { imm16: -3, .. }));
        let ops = expand(Instr::Movh {
            d: DReg(1),
            imm16: 0xd000,
        });
        assert_eq!(ops.len(), 2);
        assert!(matches!(ops[1].op, Op::Mvkh { imm16: 0xd000, .. }));
    }

    #[test]
    fn small_addi_uses_short_form() {
        let ops = expand(Instr::Addi {
            d: DReg(1),
            s: DReg(2),
            imm16: -1,
        });
        assert_eq!(ops.len(), 1);
        assert!(matches!(ops[0].op, Op::AddI { imm5: -1, .. }));
    }

    #[test]
    fn large_addi_materializes_constant() {
        let ops = expand(Instr::Addi {
            d: DReg(1),
            s: DReg(2),
            imm16: 1000,
        });
        assert_eq!(ops.len(), 2);
        assert!(matches!(ops[0].op, Op::Mvk { imm16: 1000, .. }));
        assert!(matches!(ops[1].op, Op::Add { .. }));
    }

    #[test]
    fn madd_is_mpy_plus_add() {
        let ops = expand(Instr::Madd {
            d: DReg(1),
            acc: DReg(2),
            s1: DReg(3),
            s2: DReg(4),
        });
        assert_eq!(ops.len(), 2);
        assert!(matches!(ops[0].op, Op::Mpy { .. }));
        assert!(matches!(ops[1].op, Op::Add { .. }));
    }

    #[test]
    fn word_load_scales_offset() {
        let ops = expand(Instr::Ld {
            kind: LdKind::W,
            d: DReg(1),
            base: AReg(2),
            off10: 8,
            postinc: false,
        });
        assert_eq!(ops.len(), 1);
        assert!(matches!(
            ops[0].op,
            Op::Ld {
                woff: 2,
                w: Width::W,
                ..
            }
        ));
    }

    #[test]
    fn misaligned_offset_computes_address() {
        let ops = expand(Instr::Ld {
            kind: LdKind::W,
            d: DReg(1),
            base: AReg(2),
            off10: 6,
            postinc: false,
        });
        assert!(ops.len() >= 2);
        assert!(matches!(ops.last().unwrap().op, Op::Ld { woff: 0, .. }));
    }

    #[test]
    fn postincrement_loads_then_bumps_base() {
        let ops = expand(Instr::Ld {
            kind: LdKind::W,
            d: DReg(1),
            base: AReg(2),
            off10: 4,
            postinc: true,
        });
        assert_eq!(ops.len(), 2);
        assert!(matches!(ops[0].op, Op::Ld { woff: 0, .. }));
        assert!(matches!(ops[1].op, Op::AddI { imm5: 4, .. }));
        // Base register is the B-file home of a2.
        assert_eq!(ops[1].op.dest(), Some(areg(AReg(2))));
    }

    #[test]
    fn halfword_store_scales_by_two() {
        let ops = expand(Instr::St {
            kind: StKind::H,
            s: DReg(1),
            base: AReg(2),
            off10: 6,
            postinc: false,
        });
        assert_eq!(ops.len(), 1);
        assert!(matches!(
            ops[0].op,
            Op::St {
                woff: 3,
                w: Width::H,
                ..
            }
        ));
    }

    #[test]
    fn shifts_by_constant() {
        let ops = expand(Instr::BinI {
            op: BinOp::Sra,
            d: DReg(1),
            s1: DReg(2),
            imm9: 3,
        });
        assert!(matches!(ops[0].op, Op::ShrI { imm5: 3, .. }));
        let ops = expand(Instr::BinI {
            op: BinOp::Srl,
            d: DReg(1),
            s1: DReg(2),
            imm9: 3,
        });
        assert!(matches!(ops[0].op, Op::ShruI { imm5: 3, .. }));
    }

    #[test]
    fn logic_with_immediate_materializes() {
        let ops = expand(Instr::BinI {
            op: BinOp::And,
            d: DReg(1),
            s1: DReg(2),
            imm9: 0xf,
        });
        assert_eq!(ops.len(), 2);
        assert!(matches!(ops[0].op, Op::Mvk { imm16: 0xf, .. }));
        assert!(matches!(ops[1].op, Op::And { .. }));
    }

    #[test]
    fn volatile_flag_propagates_to_memory_ops() {
        let mut t = TempAlloc::new();
        let mut out = Vec::new();
        expand_instr(
            &Instr::St {
                kind: StKind::W,
                s: DReg(1),
                base: AReg(2),
                off10: 0,
                postinc: false,
            },
            &mut t,
            true,
            &mut out,
        );
        assert!(out[0].volatile);
    }

    #[test]
    #[should_panic]
    fn control_instructions_rejected() {
        expand(Instr::J { disp24: 0 });
    }

    #[test]
    fn nops_expand_to_nothing() {
        assert!(expand(Instr::Nop16).is_empty());
        assert!(expand(Instr::Nop).is_empty());
    }
}

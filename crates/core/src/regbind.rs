//! Register binding: how source registers and translator-internal state
//! map onto the 64 target registers.
//!
//! The paper's "register binding" step assigns every source register a
//! home in the target register files. We use a fixed binding (the source
//! has 32 registers, the target 64, so no spilling is ever needed):
//!
//! | Target | Meaning |
//! |---|---|
//! | `A16..A31` | source data registers `d0..d15` |
//! | `B16..B31` | source address registers `a0..a15` |
//! | `A0..A2`, `B0..B2` | condition (predicate) registers |
//! | `A3..A15` | expansion temporaries (rotating pool) |
//! | `B3` | synchronization-device base address |
//! | `B4` | cycle correction counter (§3.4 of the paper) |
//! | `B5` | simulated-cache data base address |
//! | `B6` | return address for the cache correction subroutine |
//! | `B7` | temporary inside the cache subroutine |
//! | `B8` | constant 0 |
//! | `B9` | constant 1 |
//! | `B10..B15` | expansion temporaries (rotating pool) |

use cabt_tricore::isa::{AReg, DReg};
use cabt_vliw::isa::Reg;

/// Target home of source data register `d`.
pub fn dreg(d: DReg) -> Reg {
    Reg::a(16 + d.0)
}

/// Target home of source address register `a`.
pub fn areg(a: AReg) -> Reg {
    Reg::b(16 + a.0)
}

/// Synchronization-device base address register.
pub const SYNC_BASE_REG: Reg = Reg::b(3);

/// Cycle correction counter (the paper's dynamic correction cycles
/// accumulate here).
pub const CORR_REG: Reg = Reg::b(4);

/// Base address of the simulated cache's tag/valid/LRU array.
pub const CACHE_BASE_REG: Reg = Reg::b(5);

/// Return-address register for the cache correction subroutine.
pub const CACHE_RET_REG: Reg = Reg::b(6);

/// Scratch register reserved for the cache correction subroutine.
pub const CACHE_TMP_REG: Reg = Reg::b(7);

/// Register holding constant 0.
pub const ZERO_REG: Reg = Reg::b(8);

/// Register holding constant 1.
pub const ONE_REG: Reg = Reg::b(9);

/// Argument register: cache-analysis-block tag (with valid bit).
pub const CACHE_ARG_TAG: Reg = Reg::a(4);

/// Argument register: cache-analysis-block set index.
pub const CACHE_ARG_SET: Reg = Reg::a(5);

/// A rotating pool of expansion temporaries. Rotation (rather than a
/// single scratch register) avoids false dependences between adjacent
/// expansions, which would otherwise serialize the dual-issue packing.
#[derive(Debug, Clone)]
pub struct TempAlloc {
    a_next: u8,
    b_next: u8,
}

/// A-file temporaries available to expansions (A6..A15; A3..A5 are
/// reserved for cache-subroutine arguments and address scratch).
const A_POOL: std::ops::Range<u8> = 6..16;
/// B-file temporaries available to expansions.
const B_POOL: std::ops::Range<u8> = 10..16;

impl Default for TempAlloc {
    fn default() -> Self {
        Self::new()
    }
}

impl TempAlloc {
    /// A fresh rotating allocator.
    pub fn new() -> Self {
        TempAlloc {
            a_next: A_POOL.start,
            b_next: B_POOL.start,
        }
    }

    /// Next A-file temporary.
    pub fn a(&mut self) -> Reg {
        let r = Reg::a(self.a_next);
        self.a_next += 1;
        if self.a_next >= A_POOL.end {
            self.a_next = A_POOL.start;
        }
        r
    }

    /// Next B-file temporary.
    pub fn b(&mut self) -> Reg {
        let r = Reg::b(self.b_next);
        self.b_next += 1;
        if self.b_next >= B_POOL.end {
            self.b_next = B_POOL.start;
        }
        r
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn source_registers_map_into_upper_halves() {
        assert_eq!(dreg(DReg(0)), Reg::a(16));
        assert_eq!(dreg(DReg(15)), Reg::a(31));
        assert_eq!(areg(AReg(0)), Reg::b(16));
        assert_eq!(areg(AReg(11)), Reg::b(27)); // return-address register
    }

    #[test]
    fn reserved_registers_are_where_documented() {
        assert_eq!(SYNC_BASE_REG, Reg::b(3));
        assert_eq!(CORR_REG, Reg::b(4));
        assert_eq!(CACHE_BASE_REG, Reg::b(5));
        assert_eq!(CACHE_RET_REG, Reg::b(6));
        assert_eq!(CACHE_TMP_REG, Reg::b(7));
        assert_eq!(ZERO_REG, Reg::b(8));
        assert_eq!(ONE_REG, Reg::b(9));
        assert_eq!(CACHE_ARG_TAG, Reg::a(4));
        assert_eq!(CACHE_ARG_SET, Reg::a(5));
    }

    #[test]
    fn reserved_registers_never_collide_with_bindings() {
        let reserved = [
            SYNC_BASE_REG,
            CORR_REG,
            CACHE_BASE_REG,
            CACHE_RET_REG,
            CACHE_TMP_REG,
            ZERO_REG,
            ONE_REG,
            CACHE_ARG_TAG,
            CACHE_ARG_SET,
        ];
        for i in 0..16u8 {
            assert!(!reserved.contains(&dreg(DReg(i))));
            assert!(!reserved.contains(&areg(AReg(i))));
        }
    }

    #[test]
    fn temp_pool_rotates_without_touching_reserved() {
        let mut t = TempAlloc::new();
        let mut seen = std::collections::HashSet::new();
        for _ in 0..64 {
            let a = t.a();
            let b = t.b();
            assert!(a.is_a_file());
            assert!(!b.is_a_file());
            assert_ne!(a, CACHE_ARG_TAG);
            assert_ne!(a, CACHE_ARG_SET);
            assert_ne!(b, SYNC_BASE_REG);
            assert_ne!(b, ZERO_REG);
            assert_ne!(b, ONE_REG);
            seen.insert(a);
            seen.insert(b);
        }
        assert!(seen.len() >= 10, "pool actually rotates");
    }
}

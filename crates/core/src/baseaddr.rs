//! Base-address analysis (the "finding base addresses" box of Fig. 1).
//!
//! The paper needs the static base address of each load/store for two
//! reasons: to remap memory accesses to the target system's addresses,
//! and to recognize which accesses are I/O so they can be redirected to
//! the bus-model hardware. We perform a forward constant-propagation
//! pass over each basic block, tracking address registers whose values
//! are statically known (built by `movh.a`/`lea`/`mov.a`-of-constant
//! chains), and classify every memory access.
//!
//! Our platform maps the emulated data space at identical target
//! addresses (DESIGN.md §7), so the remap delta defaults to zero;
//! accesses with statically *unknown* bases are then still correct. A
//! non-zero delta is supported and applied to statically-known accesses
//! (exercised in tests); translating a program that mixes a non-zero
//! delta with unknown bases is rejected.

use crate::cfg::{Block, Cfg};
use cabt_tricore::isa::Instr;
use std::collections::HashMap;

/// Start of the source I/O region (matches
/// [`cabt_tricore::sim::IO_BASE`]).
pub const IO_BASE: u32 = 0xf000_0000;
/// End (exclusive) of the source I/O region.
pub const IO_END: u32 = 0xf010_0000;

/// Classification of one memory-access instruction.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum AccessClass {
    /// Statically known base address targeting ordinary memory.
    Memory {
        /// The statically determined effective base (base register value;
        /// the instruction offset is added on top).
        base: u32,
    },
    /// Statically known base address in the I/O region — this access is
    /// replaced by a bus-model access.
    Io {
        /// The statically determined base.
        base: u32,
    },
    /// The base could not be determined statically.
    Unknown,
}

/// Result of the analysis: a classification per memory instruction
/// address plus summary counters.
#[derive(Debug, Clone, Default)]
pub struct BaseAddrInfo {
    /// Classification keyed by instruction address.
    pub classes: HashMap<u32, AccessClass>,
    /// Number of accesses with statically known memory bases.
    pub known_memory: usize,
    /// Number of statically identified I/O accesses.
    pub io_accesses: usize,
    /// Number of accesses whose base stayed unknown.
    pub unknown: usize,
}

impl BaseAddrInfo {
    /// Classification of the memory instruction at `addr`, if it is one.
    pub fn class_of(&self, addr: u32) -> Option<AccessClass> {
        self.classes.get(&addr).copied()
    }
}

/// Abstract value of a register during the block-local pass.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum Val {
    Known(u32),
    Unknown,
}

/// Runs the analysis over all blocks of `cfg`.
///
/// The pass is block-local (state resets at block boundaries), which is
/// sound: a base is only reported as known when the defining chain is
/// inside the same block, exactly the "as far as this is statically
/// possible" qualification of the paper.
pub fn analyze(cfg: &Cfg) -> BaseAddrInfo {
    let mut info = BaseAddrInfo::default();
    for block in &cfg.blocks {
        analyze_block(block, &mut info);
    }
    info
}

fn analyze_block(block: &Block, info: &mut BaseAddrInfo) {
    // Abstract state: A and D register banks.
    let mut a = [Val::Unknown; 16];
    let mut d = [Val::Unknown; 16];

    for ir in &block.instrs {
        // Classify memory accesses using the *pre-state*.
        let access = match ir.instr {
            Instr::Ld { base, .. }
            | Instr::LdA { base, .. }
            | Instr::St { base, .. }
            | Instr::StA { base, .. } => Some(base),
            Instr::LdW16 { a: base, .. } | Instr::StW16 { a: base, .. } => Some(base),
            _ => None,
        };
        if let Some(base) = access {
            let class = match a[base.0 as usize] {
                Val::Known(v) if (IO_BASE..IO_END).contains(&v) => {
                    info.io_accesses += 1;
                    AccessClass::Io { base: v }
                }
                Val::Known(v) => {
                    info.known_memory += 1;
                    AccessClass::Memory { base: v }
                }
                Val::Unknown => {
                    info.unknown += 1;
                    AccessClass::Unknown
                }
            };
            info.classes.insert(ir.addr, class);
        }

        // Transfer function.
        match ir.instr {
            Instr::Mov16 { d: r, imm7 } => d[r.0 as usize] = Val::Known(imm7 as i32 as u32),
            Instr::Mov { d: r, imm16 } => d[r.0 as usize] = Val::Known(imm16 as i32 as u32),
            Instr::Movh { d: r, imm16 } => d[r.0 as usize] = Val::Known((imm16 as u32) << 16),
            Instr::MovhA { a: r, imm16 } => a[r.0 as usize] = Val::Known((imm16 as u32) << 16),
            Instr::Addi { d: r, s, imm16 } => {
                d[r.0 as usize] = match d[s.0 as usize] {
                    Val::Known(v) => Val::Known(v.wrapping_add(imm16 as i32 as u32)),
                    Val::Unknown => Val::Unknown,
                }
            }
            Instr::Addih { d: r, s, imm16 } => {
                d[r.0 as usize] = match d[s.0 as usize] {
                    Val::Known(v) => Val::Known(v.wrapping_add((imm16 as u32) << 16)),
                    Val::Unknown => Val::Unknown,
                }
            }
            Instr::Lea { a: r, base, off16 } => {
                a[r.0 as usize] = match a[base.0 as usize] {
                    Val::Known(v) => Val::Known(v.wrapping_add(off16 as i32 as u32)),
                    Val::Unknown => Val::Unknown,
                }
            }
            Instr::MovA { a: r, s } => a[r.0 as usize] = d[s.0 as usize],
            Instr::MovD { d: r, a: s } => d[r.0 as usize] = a[s.0 as usize],
            Instr::MovAA { a: r, s } => a[r.0 as usize] = a[s.0 as usize],
            Instr::MovRR16 { d: r, s } | Instr::MovRR { d: r, s } => {
                d[r.0 as usize] = d[s.0 as usize];
            }
            Instr::Ld {
                base,
                postinc: true,
                off10,
                ..
            }
            | Instr::St {
                base,
                postinc: true,
                off10,
                ..
            }
            | Instr::LdA {
                base,
                postinc: true,
                off10,
                ..
            }
            | Instr::StA {
                base,
                postinc: true,
                off10,
                ..
            } => {
                a[base.0 as usize] = match a[base.0 as usize] {
                    Val::Known(v) => Val::Known(v.wrapping_add(off10 as i32 as u32)),
                    Val::Unknown => Val::Unknown,
                }
            }
            _ => {
                // Any other write invalidates.
                for w in ir.instr.writes() {
                    if w < 16 {
                        d[w as usize] = Val::Unknown;
                    } else {
                        a[(w - 16) as usize] = Val::Unknown;
                    }
                }
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::Granularity;
    use cabt_tricore::asm::assemble;

    fn analyze_src(src: &str) -> BaseAddrInfo {
        let cfg = Cfg::build(&assemble(src).unwrap(), Granularity::BasicBlock).unwrap();
        analyze(&cfg)
    }

    #[test]
    fn movh_lea_chain_is_known() {
        let info = analyze_src(
            "
            .text
        _start:
            movh.a %a2, hi:buf
            lea    %a2, [%a2]lo:buf
            ld.w   %d1, [%a2]4
            debug
            .data
        buf: .word 0, 0
        ",
        );
        assert_eq!(info.known_memory, 1);
        assert_eq!(info.unknown, 0);
        let class = info.classes.values().next().unwrap();
        assert_eq!(*class, AccessClass::Memory { base: 0xd000_0000 });
    }

    #[test]
    fn io_region_is_classified() {
        let info = analyze_src(
            "
            .text
        _start:
            movh.a %a3, 0xf000
            mov    %d1, 1
            st.w   [%a3]16, %d1
            ld.w   %d2, [%a3]16
            debug
        ",
        );
        assert_eq!(info.io_accesses, 2);
        assert_eq!(info.known_memory, 0);
        for c in info.classes.values() {
            assert_eq!(*c, AccessClass::Io { base: 0xf000_0000 });
        }
    }

    #[test]
    fn unknown_base_reported() {
        let info = analyze_src(
            "
            .text
        _start:
            ld.w %d1, [%a6]0
            debug
        ",
        );
        assert_eq!(info.unknown, 1);
    }

    #[test]
    fn mov_a_of_constant_propagates() {
        let info = analyze_src(
            "
            .text
        _start:
            movh %d3, 0xd000
            addi %d3, %d3, 0x100
            mov.a %a4, %d3
            st.w [%a4]0, %d3
            debug
        ",
        );
        assert_eq!(info.known_memory, 1);
        assert!(matches!(
            info.classes.values().next(),
            Some(AccessClass::Memory { base: 0xd000_0100 })
        ));
    }

    #[test]
    fn postincrement_advances_known_base() {
        let info = analyze_src(
            "
            .text
        _start:
            movh.a %a2, 0xd000
            ld.w %d1, [%a2+]4
            ld.w %d2, [%a2+]4
            debug
        ",
        );
        let mut bases: Vec<u32> = info
            .classes
            .values()
            .map(|c| match c {
                AccessClass::Memory { base } => *base,
                other => panic!("unexpected {other:?}"),
            })
            .collect();
        bases.sort();
        assert_eq!(bases, vec![0xd000_0000, 0xd000_0004]);
    }

    #[test]
    fn state_resets_at_block_boundaries() {
        // The base is set up in one block; after the label (a branch
        // target) the block-local analysis must forget it.
        let info = analyze_src(
            "
            .text
        _start:
            movh.a %a2, 0xd000
            jnz %d0, after
            nop
        after:
            ld.w %d1, [%a2]0
            debug
        ",
        );
        assert_eq!(info.unknown, 1);
        assert_eq!(info.known_memory, 0);
    }

    #[test]
    fn arbitrary_alu_write_invalidates() {
        let info = analyze_src(
            "
            .text
        _start:
            movh %d3, 0xd000
            add  %d3, %d3, %d4
            mov.a %a4, %d3
            ld.w %d1, [%a4]0
            debug
        ",
        );
        assert_eq!(info.unknown, 1);
    }
}

//! Packing of target operations into execute packets ("further
//! transformations of the intermediate code": parallelization,
//! functional-unit assignment, and NOP padding for delay slots).
//!
//! The scheduler consumes a linear stream of [`Item`]s — target
//! operations interleaved with [`Item::Label`] markers for branch targets
//! — and produces rows of slots (proto execute packets). Placement is
//! *monotonic tail packing*: each operation either joins the youngest row
//! (when its operands are ready, a legal unit is free, and no same-row
//! hazard exists) or opens a new row, with multi-cycle NOP rows inserted
//! to cover load/multiply delay slots. This reproduces the paper's
//! observation that "on the average about two or three C6x instructions
//! can be executed in parallel" for translated code.
//!
//! Memory ordering: stores and *volatile* operations (accesses to the
//! synchronization device and the SoC-bus adapter) are strictly ordered
//! against all other memory operations; plain loads may share a row with
//! other loads.

use crate::TranslateError;
use cabt_vliw::isa::{Op, Packet, Pred, Slot, Unit};

/// Relocation applied after layout assigns packet addresses.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum FixupKind {
    /// Patch a `B` displacement to reach the label.
    Branch,
    /// Patch an `Mvk` immediate with the low half of the label address.
    MvkLo,
    /// Patch an `Mvkh` immediate with the high half of the label address.
    MvkHi,
}

/// One target operation awaiting scheduling.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct TOp {
    /// Optional predicate guard.
    pub pred: Option<Pred>,
    /// The operation (displacements/immediates may be placeholders if
    /// `fixup` is set).
    pub op: Op,
    /// Post-layout relocation against a label.
    pub fixup: Option<(FixupKind, usize)>,
    /// Strictly ordered against all memory operations (device accesses).
    pub volatile: bool,
}

impl TOp {
    /// A plain operation.
    pub fn new(op: Op) -> Self {
        TOp {
            pred: None,
            op,
            fixup: None,
            volatile: false,
        }
    }

    /// A predicated operation.
    pub fn when(pred: Pred, op: Op) -> Self {
        TOp {
            pred: Some(pred),
            op,
            fixup: None,
            volatile: false,
        }
    }

    /// Marks the operation as a device access with program order.
    pub fn volatile(mut self) -> Self {
        self.volatile = true;
        self
    }

    /// Attaches a layout fixup.
    pub fn with_fixup(mut self, kind: FixupKind, label: usize) -> Self {
        self.fixup = Some((kind, label));
        self
    }
}

/// Scheduler input: operations and branch-target markers.
#[derive(Debug, Clone)]
pub enum Item {
    /// A target operation.
    Op(TOp),
    /// A branch-target label: the next operation starts a new packet and
    /// the label resolves to that packet's address.
    Label(usize),
}

/// Scheduler output: proto-packets (rows) plus label and fixup tables.
#[derive(Debug, Clone, Default)]
pub struct Schedule {
    /// Rows of slots; each row becomes one execute packet.
    pub rows: Vec<Vec<Slot>>,
    /// Label → row index.
    pub labels: std::collections::HashMap<usize, usize>,
    /// `(row, slot, kind, label)` relocations.
    pub fixups: Vec<(usize, usize, FixupKind, usize)>,
}

impl Schedule {
    /// Lays the rows out as packets starting at `base`, returning the
    /// packets and the byte address of each row.
    ///
    /// # Errors
    ///
    /// Returns [`TranslateError::Sched`] if a row violates the packet
    /// rules (a scheduler bug).
    pub fn layout(&self, base: u32) -> Result<(Vec<Packet>, Vec<u32>), TranslateError> {
        let mut packets = Vec::with_capacity(self.rows.len());
        let mut addrs = Vec::with_capacity(self.rows.len());
        let mut cur = base;
        for row in &self.rows {
            let mut p = Packet::at(cur);
            for s in row {
                p.push(*s)
                    .map_err(|e| TranslateError::Sched(e.to_string()))?;
            }
            addrs.push(cur);
            cur += p.size();
            packets.push(p);
        }
        Ok((packets, addrs))
    }
}

/// Total issue cycles of a row (multi-cycle NOPs count their length).
fn row_issue_cycles(row: &[Slot]) -> u64 {
    match row.first() {
        Some(Slot {
            op: Op::Nop { count },
            ..
        }) if row.len() == 1 => *count as u64,
        _ => 1,
    }
}

/// The monotonic tail-packing scheduler.
#[derive(Debug)]
pub struct Scheduler {
    rows: Vec<Vec<Slot>>,
    /// Issue cycle of each row.
    row_cycle: Vec<u64>,
    /// Cycle at which each register's value is available.
    ready: [u64; 64],
    /// Earliest cycle for the next load (after the last store/volatile).
    load_barrier: u64,
    /// Earliest cycle for the next store/volatile (after every memory op).
    store_barrier: u64,
    /// Force the next operation into a fresh row (after a label).
    force_new: bool,
    pending_labels: Vec<usize>,
    schedule: Schedule,
}

impl Default for Scheduler {
    fn default() -> Self {
        Self::new()
    }
}

impl Scheduler {
    /// An empty scheduler.
    pub fn new() -> Self {
        Scheduler {
            rows: Vec::new(),
            row_cycle: Vec::new(),
            ready: [0; 64],
            load_barrier: 0,
            store_barrier: 0,
            force_new: false,
            pending_labels: Vec::new(),
            schedule: Schedule::default(),
        }
    }

    /// Cycle at which the next new row would issue.
    fn next_cycle(&self) -> u64 {
        match (self.rows.last(), self.row_cycle.last()) {
            (Some(r), Some(&c)) => c + row_issue_cycles(r),
            _ => 0,
        }
    }

    /// Feeds one item.
    ///
    /// # Errors
    ///
    /// Returns [`TranslateError::Sched`] if an operation has no legal
    /// unit (a translator bug).
    pub fn push(&mut self, item: Item) -> Result<(), TranslateError> {
        match item {
            Item::Label(l) => {
                self.force_new = true;
                self.pending_labels.push(l);
                Ok(())
            }
            Item::Op(t) => self.place(t),
        }
    }

    fn place(&mut self, t: TOp) -> Result<(), TranslateError> {
        let is_load = matches!(t.op, Op::Ld { .. });
        let is_store = matches!(t.op, Op::St { .. });
        let is_mem = is_load || is_store;
        let ordered = t.volatile || is_store;

        // Earliest legal cycle from operand readiness and memory order.
        let mut earliest = 0u64;
        for s in t.op.sources() {
            earliest = earliest.max(self.ready[s.index()]);
        }
        if let Some(p) = t.pred {
            earliest = earliest.max(self.ready[p.reg.index()]);
        }
        // WAW: a new write must not be overtaken by an in-flight delayed
        // write of the same register (e.g. a pending load).
        if let Some(d) = t.op.dest() {
            earliest = earliest.max(self.ready[d.index()].saturating_sub(1));
        }
        if is_mem || t.volatile {
            earliest = earliest.max(if ordered {
                self.store_barrier
            } else {
                self.load_barrier
            });
        }

        let multi_nop = matches!(t.op, Op::Nop { count } if count > 1);

        // Try to join the tail row.
        let tail_ok = !self.force_new && !multi_nop && !self.rows.is_empty() && {
            let row = self.rows.last().expect("nonempty");
            let cycle = *self.row_cycle.last().expect("nonempty");
            cycle >= earliest
                && !(row.len() == 1 && matches!(row[0].op, Op::Nop { count } if count > 1))
                && row.len() < 8
                && self.free_unit(row, &t.op).is_some()
                && !self.same_row_hazard(row, &t)
        };

        let (row_idx, cycle) = if tail_ok {
            let idx = self.rows.len() - 1;
            let unit = self
                .free_unit(&self.rows[idx], &t.op)
                .expect("checked in tail_ok");
            self.rows[idx].push(Slot {
                unit,
                pred: t.pred,
                op: t.op,
            });
            (idx, self.row_cycle[idx])
        } else {
            let mut start = self.next_cycle();
            if earliest > start {
                // Pad delay slots with a multi-cycle NOP row.
                let pad = (earliest - start).min(9) as u8;
                self.rows
                    .push(vec![Slot::new(Unit::S1, Op::Nop { count: pad })]);
                self.row_cycle.push(start);
                start += pad as u64;
                // A single NOP row of up to 9 cycles covers every delay
                // in the ISA (max is the divider's 17 — loop if needed).
                while earliest > start {
                    let pad = (earliest - start).min(9) as u8;
                    self.rows
                        .push(vec![Slot::new(Unit::S1, Op::Nop { count: pad })]);
                    self.row_cycle.push(start);
                    start += pad as u64;
                }
            }
            let unit = self
                .free_unit(&[], &t.op)
                .ok_or_else(|| TranslateError::Sched(format!("no legal unit for {}", t.op)))?;
            self.rows.push(vec![Slot {
                unit,
                pred: t.pred,
                op: t.op,
            }]);
            self.row_cycle.push(start);
            self.force_new = false;
            for l in self.pending_labels.drain(..) {
                self.schedule.labels.insert(l, self.rows.len() - 1);
            }
            (self.rows.len() - 1, start)
        };

        if let Some((kind, label)) = t.fixup {
            let slot = self.rows[row_idx].len() - 1;
            self.schedule.fixups.push((row_idx, slot, kind, label));
        }

        if let Some(d) = t.op.dest() {
            self.ready[d.index()] = cycle + 1 + t.op.delay_slots() as u64;
        }
        if is_mem || t.volatile {
            self.store_barrier = self.store_barrier.max(cycle + 1);
            if ordered {
                self.load_barrier = self.load_barrier.max(cycle + 1);
            }
        }
        Ok(())
    }

    /// Finds a free unit in `row` that can execute `op`.
    fn free_unit(&self, row: &[Slot], op: &Op) -> Option<Unit> {
        for kind in op.legal_kinds() {
            for unit in Unit::ALL {
                if unit.kind() == *kind && !row.iter().any(|s| s.unit == unit) {
                    return Some(unit);
                }
            }
        }
        None
    }

    /// True if placing `t` in `row` would create a same-row hazard:
    /// a WAW with another slot, two ordered memory ops, a branch already
    /// present, or a halt mixing with other work.
    fn same_row_hazard(&self, row: &[Slot], t: &TOp) -> bool {
        let writes_same =
            t.op.dest()
                .is_some_and(|d| row.iter().any(|s| s.op.dest() == Some(d)));
        let mem_conflict = (matches!(t.op, Op::St { .. }) || t.volatile)
            && row
                .iter()
                .any(|s| matches!(s.op, Op::Ld { .. } | Op::St { .. }));
        let second_mem_store =
            matches!(t.op, Op::Ld { .. }) && row.iter().any(|s| matches!(s.op, Op::St { .. }));
        let branch_present = row
            .iter()
            .any(|s| matches!(s.op, Op::B { .. } | Op::BReg { .. } | Op::Halt));
        let is_branchy = matches!(t.op, Op::B { .. } | Op::BReg { .. } | Op::Halt);
        writes_same || mem_conflict || second_mem_store || (branch_present && is_branchy)
    }

    /// Pads with NOP rows until every in-flight write to an
    /// architectural register home (`A16..A31`, `B16..B31`) has
    /// committed. Used before `HALT` and, in the per-instruction debug
    /// translation, at every block boundary so a stopped debugger
    /// observes the architectural state.
    pub fn flush_architectural(&mut self) {
        let due = (16..32)
            .chain(48..64)
            .map(|i| self.ready[i])
            .max()
            .unwrap_or(0);
        let mut start = self.next_cycle();
        while due > start {
            let pad = (due - start).min(9) as u8;
            self.rows
                .push(vec![Slot::new(Unit::S1, Op::Nop { count: pad })]);
            self.row_cycle.push(start);
            start += pad as u64;
        }
        // The next operation must start its own packet: a HALT (or the
        // next debug block) sharing the last write's cycle would stop
        // the core before the write retires.
        self.force_new = true;
    }

    /// Finishes scheduling and returns the rows, labels and fixups.
    /// Labels pending at the end resolve to one-past-the-last row.
    pub fn finish(mut self) -> Schedule {
        for l in self.pending_labels.drain(..) {
            self.schedule.labels.insert(l, self.rows.len());
        }
        self.schedule.rows = self.rows;
        self.schedule
    }

    /// Total issue cycles of everything scheduled so far.
    pub fn cycles(&self) -> u64 {
        self.next_cycle()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use cabt_vliw::isa::Reg;

    fn add(d: u8, s1: u8, s2: u8) -> TOp {
        TOp::new(Op::Add {
            d: Reg::a(d),
            s1: Reg::a(s1),
            s2: Reg::a(s2),
        })
    }

    fn sched(items: Vec<Item>) -> Schedule {
        let mut s = Scheduler::new();
        for i in items {
            s.push(i).unwrap();
        }
        s.finish()
    }

    #[test]
    fn independent_ops_pack_into_one_row() {
        let s = sched(vec![
            Item::Op(add(1, 2, 3)),
            Item::Op(add(4, 5, 6)),
            Item::Op(add(7, 8, 9)),
        ]);
        assert_eq!(s.rows.len(), 1);
        assert_eq!(s.rows[0].len(), 3);
        // Three distinct units were assigned.
        let units: std::collections::HashSet<_> = s.rows[0].iter().map(|s| s.unit).collect();
        assert_eq!(units.len(), 3);
    }

    #[test]
    fn dependent_ops_serialize() {
        let s = sched(vec![Item::Op(add(1, 2, 3)), Item::Op(add(4, 1, 1))]);
        assert_eq!(s.rows.len(), 2);
    }

    #[test]
    fn waw_in_same_row_refused() {
        let s = sched(vec![Item::Op(add(1, 2, 3)), Item::Op(add(1, 5, 6))]);
        assert_eq!(s.rows.len(), 2, "two writes of A1 must not share a row");
    }

    #[test]
    fn load_delay_pads_with_nops() {
        let ld = TOp::new(Op::Ld {
            w: cabt_vliw::isa::Width::W,
            unsigned: false,
            d: Reg::a(1),
            base: Reg::b(16),
            woff: 0,
        });
        let s = sched(vec![Item::Op(ld), Item::Op(add(2, 1, 1))]);
        // Row 0: load. Row 1: NOP 4. Row 2: add.
        assert_eq!(s.rows.len(), 3);
        assert!(matches!(s.rows[1][0].op, Op::Nop { count: 4 }));
    }

    #[test]
    fn mpy_delay_one() {
        let mpy = TOp::new(Op::Mpy {
            d: Reg::a(1),
            s1: Reg::a(2),
            s2: Reg::a(3),
        });
        let s = sched(vec![Item::Op(mpy), Item::Op(add(4, 1, 1))]);
        assert_eq!(s.rows.len(), 3);
        assert!(matches!(s.rows[1][0].op, Op::Nop { count: 1 }));
    }

    #[test]
    fn labels_force_new_rows_and_resolve() {
        let s = sched(vec![
            Item::Op(add(1, 2, 3)),
            Item::Label(7),
            Item::Op(add(4, 5, 6)), // would otherwise pack into row 0
        ]);
        assert_eq!(s.rows.len(), 2);
        assert_eq!(s.labels[&7], 1);
    }

    #[test]
    fn trailing_label_resolves_past_end() {
        let s = sched(vec![Item::Op(add(1, 2, 3)), Item::Label(9)]);
        assert_eq!(s.labels[&9], 1);
    }

    #[test]
    fn stores_are_strictly_ordered() {
        let st = |reg: u8| {
            TOp::new(Op::St {
                w: cabt_vliw::isa::Width::W,
                s: Reg::a(reg),
                base: Reg::b(16),
                woff: 0,
            })
        };
        let s = sched(vec![Item::Op(st(1)), Item::Op(st(2))]);
        assert_eq!(s.rows.len(), 2);
    }

    #[test]
    fn loads_may_share_a_row() {
        let ld = |d: u8, b: u8| {
            TOp::new(Op::Ld {
                w: cabt_vliw::isa::Width::W,
                unsigned: false,
                d: Reg::a(d),
                base: Reg::b(b),
                woff: 0,
            })
        };
        let s = sched(vec![Item::Op(ld(1, 16)), Item::Op(ld(2, 17))]);
        assert_eq!(s.rows.len(), 1, "two loads on D1/D2 share the packet");
    }

    #[test]
    fn volatile_ops_keep_program_order() {
        let ld = TOp::new(Op::Ld {
            w: cabt_vliw::isa::Width::W,
            unsigned: false,
            d: Reg::a(1),
            base: Reg::b(3),
            woff: 1,
        })
        .volatile();
        let ld2 = TOp::new(Op::Ld {
            w: cabt_vliw::isa::Width::W,
            unsigned: false,
            d: Reg::a(2),
            base: Reg::b(3),
            woff: 3,
        })
        .volatile();
        let s = sched(vec![Item::Op(ld), Item::Op(ld2)]);
        assert_eq!(s.rows.len(), 2, "device reads must not reorder or merge");
    }

    #[test]
    fn multicycle_nop_gets_own_row() {
        let s = sched(vec![
            Item::Op(add(1, 2, 3)),
            Item::Op(TOp::new(Op::Nop { count: 5 })),
            Item::Op(add(4, 5, 6)),
        ]);
        assert_eq!(s.rows.len(), 3);
        assert!(matches!(s.rows[1][0].op, Op::Nop { count: 5 }));
    }

    #[test]
    fn fixups_recorded_at_slot_positions() {
        let b = TOp::new(Op::B { disp21: 0 }).with_fixup(FixupKind::Branch, 42);
        let s = sched(vec![Item::Op(add(1, 2, 3)), Item::Op(b)]);
        // Branch shares row 0 (S unit free, no hazard).
        assert_eq!(s.fixups, vec![(0, 1, FixupKind::Branch, 42)]);
    }

    #[test]
    fn layout_assigns_addresses_by_size() {
        let s = sched(vec![
            Item::Op(add(1, 2, 3)),
            Item::Op(add(4, 5, 6)),
            Item::Label(1),
            Item::Op(add(7, 8, 9)),
        ]);
        let (packets, addrs) = s.layout(0x1000).unwrap();
        assert_eq!(packets.len(), 2);
        assert_eq!(addrs, vec![0x1000, 0x1000 + 16]);
        assert_eq!(packets[1].addr, 0x1010);
    }

    #[test]
    fn divider_delay_pads_in_chunks() {
        let div = TOp::new(Op::Div {
            d: Reg::a(1),
            s1: Reg::a(2),
            s2: Reg::a(3),
        });
        let s = sched(vec![Item::Op(div), Item::Op(add(4, 1, 1))]);
        // 17 delay slots → NOP 9 + NOP 8 + add.
        let nops: u32 = s
            .rows
            .iter()
            .filter_map(|r| match r[0].op {
                Op::Nop { count } if r.len() == 1 => Some(count as u32),
                _ => None,
            })
            .sum();
        assert_eq!(nops, 17);
    }

    #[test]
    fn cycles_track_issue_slots() {
        let mut s = Scheduler::new();
        s.push(Item::Op(add(1, 2, 3))).unwrap();
        s.push(Item::Op(TOp::new(Op::Nop { count: 5 }))).unwrap();
        assert_eq!(s.cycles(), 6);
    }
}

//! The translation driver: runs the Fig. 1 pipeline end to end and
//! performs layout and relocation of the generated VLIW program.

use crate::baseaddr::{self, AccessClass, BaseAddrInfo};
use crate::cfg::{Block, Cfg};
use crate::cycles::{block_cycles, BlockCycles};
use crate::expand::expand_instr;
use crate::icache::{analysis_blocks, check_supported, correction_inline, CacheLayout};
use crate::regbind::{
    areg, dreg, TempAlloc, CACHE_ARG_SET, CACHE_ARG_TAG, CACHE_BASE_REG, CACHE_RET_REG, CORR_REG,
    ONE_REG, SYNC_BASE_REG, ZERO_REG,
};
use crate::sched::{FixupKind, Item, Scheduler, TOp};
use crate::{DetailLevel, Granularity, TranslateError};
use cabt_isa::elf::{ElfFile, Section, SectionKind, EM_TI_C6000};
use cabt_tricore::arch::{ArchDesc, TimingModel};
use cabt_tricore::isa::{AReg, Cond, Instr, RA};
use cabt_vliw::encode::encode_program;
use cabt_vliw::isa::{Op, Packet, Pred, Reg, Slot, Width};
use cabt_vliw::sim::VliwSim;
use std::collections::HashMap;

/// Base address of the synchronization device in the target address
/// space (start / wait / correction-start / correction-wait words).
pub const SYNC_DEVICE_BASE: u32 = 0x01a0_0000;
/// Default load address of the translated image.
pub const IMAGE_BASE: u32 = 0x0000_8000;

const PRED_MAIN: Reg = Reg::a(0);

/// Per-block translation record.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct BlockInfo {
    /// Block id (index into the source CFG).
    pub id: usize,
    /// Source start address.
    pub src_start: u32,
    /// Source end address (exclusive).
    pub src_end: u32,
    /// Target address of the block's first packet.
    pub tgt_addr: u32,
    /// Statically predicted source cycles (`n` of Fig. 2).
    pub static_cycles: u32,
    /// Number of cache analysis blocks (level 3 only, else 0).
    pub analysis_blocks: usize,
}

/// Summary counters of one translation.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct TranslationStats {
    /// Source instructions translated.
    pub source_instructions: usize,
    /// Basic blocks translated.
    pub blocks: usize,
    /// Target instruction slots emitted (NOPs included).
    pub target_slots: usize,
    /// Execute packets emitted.
    pub target_packets: usize,
    /// Statically identified I/O accesses.
    pub io_accesses: usize,
    /// Memory accesses whose base stayed unknown.
    pub unknown_bases: usize,
}

/// A finished translation: the target program plus everything the
/// platform, the debugger and the experiments need to run it.
#[derive(Debug, Clone)]
pub struct Translated {
    /// The target program as execute packets, prologue first.
    pub packets: Vec<Packet>,
    /// Entry address (the prologue).
    pub entry: u32,
    /// Per-block records, in source order.
    pub blocks: Vec<BlockInfo>,
    /// Source block start → target packet address.
    pub addr_map: HashMap<u32, u32>,
    /// Cache-simulation layout (level 3 only).
    pub cache_layout: Option<CacheLayout>,
    /// Detail level this was translated at.
    pub level: DetailLevel,
    /// Summary counters.
    pub stats: TranslationStats,
    /// Data/BSS sections copied from the source image (identity-mapped).
    pub data_sections: Vec<(u32, Vec<u8>)>,
    /// Result of the base-address analysis.
    pub base_info: BaseAddrInfo,
}

impl Translated {
    /// Builds a ready-to-run simulator: program loaded, data sections
    /// placed, entry at the prologue. Attach a platform bus before
    /// running if the program does I/O or cycle generation should stall.
    ///
    /// # Errors
    ///
    /// Propagates simulator construction/load failures.
    pub fn make_sim(&self) -> Result<VliwSim, cabt_vliw::sim::VliwError> {
        let mut sim = VliwSim::new(self.packets.clone())?;
        // Register-indirect branches carry source-world code addresses
        // (the guest materializes labels with `movh.a`/`lea`); alias
        // every source block start to its packet so they resolve on
        // all dispatch cores.
        sim.add_branch_aliases(self.addr_map.iter().map(|(&src, &tgt)| (src, tgt)))?;
        for (addr, data) in &self.data_sections {
            sim.mem
                .load(*addr, data)
                .map_err(cabt_vliw::sim::VliwError::Mem)?;
        }
        // The placed data sections are the state an engine reset
        // restores.
        sim.seal_reset_image();
        Ok(sim)
    }

    /// Serializes the translated program to an ELF image for the target
    /// machine (`EM_TI_C6000`), preserving the data sections.
    ///
    /// # Errors
    ///
    /// Propagates ELF encoding failures.
    pub fn to_elf(&self) -> Result<ElfFile, cabt_isa::IsaError> {
        let mut elf = ElfFile::new(EM_TI_C6000, self.entry);
        elf.sections
            .push(Section::text(self.entry, encode_program(&self.packets)));
        for (i, (addr, data)) in self.data_sections.iter().enumerate() {
            let mut s = Section::data(*addr, data.clone());
            if i > 0 {
                s.name = format!(".data{i}");
            }
            elf.sections.push(s);
        }
        Ok(elf)
    }

    /// The target address of the source basic block starting at `src`.
    pub fn target_of(&self, src: u32) -> Option<u32> {
        self.addr_map.get(&src).copied()
    }

    /// Renders a human-readable listing: each source block's range and
    /// predicted cycle count, followed by its execute packets.
    pub fn listing(&self) -> String {
        use std::fmt::Write as _;
        let mut out = String::new();
        let _ = writeln!(
            out,
            "; translated at level `{}`: {} source instructions, {} blocks, {} packets",
            self.level,
            self.stats.source_instructions,
            self.stats.blocks,
            self.stats.target_packets
        );
        let mut block_at: std::collections::HashMap<u32, &BlockInfo> =
            std::collections::HashMap::new();
        for b in &self.blocks {
            block_at.insert(b.tgt_addr, b);
        }
        for p in &self.packets {
            if let Some(b) = block_at.get(&p.addr) {
                let _ = writeln!(
                    out,
                    "\n; block {} src [{:#010x}..{:#010x}) predicted {} cycles",
                    b.id, b.src_start, b.src_end, b.static_cycles
                );
            }
            let _ = write!(out, "{p}");
        }
        if let Some(layout) = &self.cache_layout {
            let _ = writeln!(
                out,
                "\n; cache data: {} bytes at {:#010x} ({} sets x {} ways)",
                layout.total_bytes(),
                layout.base,
                layout.cfg.sets,
                layout.cfg.ways
            );
        }
        out
    }
}

/// The cycle-accurate static compiler (Fig. 1).
///
/// See the crate documentation for an end-to-end example.
#[derive(Debug, Clone)]
pub struct Translator {
    level: DetailLevel,
    granularity: Granularity,
    arch: ArchDesc,
    cache_inline: bool,
    image_base: u32,
}

impl Translator {
    /// A translator at the given detail level with the default source
    /// architecture description.
    pub fn new(level: DetailLevel) -> Self {
        Translator {
            level,
            granularity: Granularity::BasicBlock,
            arch: ArchDesc::default(),
            cache_inline: false,
            image_base: IMAGE_BASE,
        }
    }

    /// Selects the cycle-generation granularity (per-instruction is the
    /// debug translation of §3.5).
    pub fn with_granularity(mut self, g: Granularity) -> Self {
        self.granularity = g;
        self
    }

    /// Uses a custom source architecture description.
    pub fn with_arch(mut self, arch: ArchDesc) -> Self {
        self.arch = arch;
        self
    }

    /// Inlines the cache-correction code into blocks instead of calling
    /// the generated subroutine (the paper's large-block optimization;
    /// an ablation lever here).
    pub fn with_cache_inline(mut self, inline: bool) -> Self {
        self.cache_inline = inline;
        self
    }

    /// Overrides the target image base address.
    pub fn with_image_base(mut self, base: u32) -> Self {
        self.image_base = base;
        self
    }

    /// Runs the full translation pipeline on `elf`.
    ///
    /// # Errors
    ///
    /// Returns [`TranslateError`] for malformed inputs, unsupported cache
    /// geometries or internal scheduling failures.
    pub fn translate(&self, elf: &ElfFile) -> Result<Translated, TranslateError> {
        let cfg = Cfg::build(elf, self.granularity)?;
        let base_info = baseaddr::analyze(&cfg);
        if self.level.simulates_icache() {
            check_supported(&self.arch.cache)?;
        }
        let model = TimingModel::new(self.arch.timing.clone());
        let cycles: Vec<BlockCycles> = cfg.blocks.iter().map(|b| block_cycles(&model, b)).collect();

        // Label space: blocks, then the cache subroutine, then the cache
        // data marker, then call-site return labels.
        let nblocks = cfg.blocks.len();
        let sub_label = nblocks;
        let data_label = nblocks + 1;
        let mut next_label = nblocks + 2;

        let mut sched = Scheduler::new();
        let mut temps = TempAlloc::new();
        let push = |s: &mut Scheduler, t: TOp| s.push(Item::Op(t));

        // Entry block: the block containing the ELF entry point.
        let entry_block = cfg
            .block_at(cfg.entry)
            .or_else(|| cfg.block_containing(cfg.entry))
            .ok_or(TranslateError::Decode { addr: cfg.entry })?
            .id;

        // ---- prologue ----
        emit_const32(&mut sched, SYNC_BASE_REG, SYNC_DEVICE_BASE)?;
        push(
            &mut sched,
            TOp::new(Op::Mvk {
                d: CORR_REG,
                imm16: 0,
            }),
        )?;
        push(
            &mut sched,
            TOp::new(Op::Mvk {
                d: ZERO_REG,
                imm16: 0,
            }),
        )?;
        push(
            &mut sched,
            TOp::new(Op::Mvk {
                d: ONE_REG,
                imm16: 1,
            }),
        )?;
        if self.level.simulates_icache() {
            // Cache data base is only known after layout: patch via label.
            push(
                &mut sched,
                TOp::new(Op::Mvk {
                    d: CACHE_BASE_REG,
                    imm16: 0,
                })
                .with_fixup(FixupKind::MvkLo, data_label),
            )?;
            push(
                &mut sched,
                TOp::new(Op::Mvkh {
                    d: CACHE_BASE_REG,
                    imm16: 0,
                })
                .with_fixup(FixupKind::MvkHi, data_label),
            )?;
        }
        // Source stack pointer (identity-mapped data space).
        emit_const32(&mut sched, areg(AReg(10)), 0xd003_0000)?;
        push(
            &mut sched,
            TOp::new(Op::B { disp21: 0 }).with_fixup(FixupKind::Branch, entry_block),
        )?;
        push(&mut sched, TOp::new(Op::Nop { count: 5 }))?;

        // ---- blocks ----
        for block in &cfg.blocks {
            sched.push(Item::Label(block.id))?;
            let bc = cycles[block.id];

            if self.level.generates_cycles() {
                // start cycle generation of n cycles (Fig. 2)
                emit_const32(&mut sched, Reg::a(3), bc.cycles)?;
                push(
                    &mut sched,
                    TOp::new(Op::St {
                        w: Width::W,
                        s: Reg::a(3),
                        base: SYNC_BASE_REG,
                        woff: 0,
                    })
                    .volatile(),
                )?;
            }

            // Body, possibly divided into cache analysis blocks.
            let abs = if self.level.simulates_icache() {
                analysis_blocks(block, &self.arch.cache)
            } else {
                Vec::new()
            };
            let layout_probe = CacheLayout {
                cfg: self.arch.cache,
                base: 0,
            };
            if self.level.simulates_icache() {
                for ab in &abs {
                    // Arguments: tag word and set index of this line.
                    let tagw = layout_probe.tag_word(ab.line);
                    emit_const32(&mut sched, CACHE_ARG_TAG, tagw)?;
                    push(
                        &mut sched,
                        TOp::new(Op::Mvk {
                            d: CACHE_ARG_SET,
                            imm16: self.arch.cache.set_of(ab.line) as i16,
                        }),
                    )?;
                    if self.cache_inline {
                        for t in correction_inline(&layout_probe) {
                            push(&mut sched, t)?;
                        }
                    } else {
                        let ret = next_label;
                        next_label += 1;
                        push(
                            &mut sched,
                            TOp::new(Op::Mvk {
                                d: CACHE_RET_REG,
                                imm16: 0,
                            })
                            .with_fixup(FixupKind::MvkLo, ret),
                        )?;
                        push(
                            &mut sched,
                            TOp::new(Op::Mvkh {
                                d: CACHE_RET_REG,
                                imm16: 0,
                            })
                            .with_fixup(FixupKind::MvkHi, ret),
                        )?;
                        push(
                            &mut sched,
                            TOp::new(Op::B { disp21: 0 }).with_fixup(FixupKind::Branch, sub_label),
                        )?;
                        push(&mut sched, TOp::new(Op::Nop { count: 5 }))?;
                        sched.push(Item::Label(ret))?;
                    }
                    for ir in &block.instrs[ab.start..ab.end] {
                        if !ir.instr.is_control() {
                            let vol = access_volatile(&base_info, ir.addr);
                            let mut ops = Vec::new();
                            expand_instr(&ir.instr, &mut temps, vol, &mut ops);
                            for t in ops {
                                push(&mut sched, t)?;
                            }
                        }
                    }
                }
            } else {
                for ir in &block.instrs {
                    if !ir.instr.is_control() {
                        let vol = access_volatile(&base_info, ir.addr);
                        let mut ops = Vec::new();
                        expand_instr(&ir.instr, &mut temps, vol, &mut ops);
                        for t in ops {
                            push(&mut sched, t)?;
                        }
                    }
                }
            }

            // Terminator lowering with correction and epilogue.
            self.lower_terminator(&cfg, block, &bc, &mut sched, &mut temps)?;
        }

        // ---- cache correction subroutine ----
        if self.level.simulates_icache() && !self.cache_inline {
            sched.push(Item::Label(sub_label))?;
            for t in crate::icache::correction_subroutine(&CacheLayout {
                cfg: self.arch.cache,
                base: 0,
            }) {
                sched.push(Item::Op(t))?;
            }
        }
        sched.push(Item::Label(data_label))?;

        // ---- layout and relocation ----
        let mut schedule = sched.finish();
        let (row_addrs, end_addr) = row_addresses(&schedule.rows, self.image_base);
        let label_addr =
            |label: usize, labels: &HashMap<usize, usize>| -> Result<u32, TranslateError> {
                let row = *labels
                    .get(&label)
                    .ok_or_else(|| TranslateError::Sched(format!("unresolved label {label}")))?;
                Ok(if row < row_addrs.len() {
                    row_addrs[row]
                } else {
                    end_addr
                })
            };
        let fixups = schedule.fixups.clone();
        for (row, slot, kind, label) in fixups {
            let target = label_addr(label, &schedule.labels)?;
            let slot_addr = row_addrs[row] + 8 * slot as u32;
            let s: &mut Slot = &mut schedule.rows[row][slot];
            match (kind, &mut s.op) {
                (FixupKind::Branch, Op::B { disp21 }) => {
                    *disp21 = ((target as i64 - slot_addr as i64) / 4) as i32;
                }
                (FixupKind::MvkLo, Op::Mvk { imm16, .. }) => {
                    *imm16 = (target & 0xffff) as u16 as i16;
                }
                (FixupKind::MvkHi, Op::Mvkh { imm16, .. }) => {
                    *imm16 = (target >> 16) as u16;
                }
                other => {
                    return Err(TranslateError::Sched(format!(
                        "fixup {other:?} applied to incompatible op"
                    )))
                }
            }
        }

        let (packets, _) = schedule.layout(self.image_base)?;
        let cache_layout = if self.level.simulates_icache() {
            Some(CacheLayout {
                cfg: self.arch.cache,
                base: end_addr,
            })
        } else {
            None
        };
        // The translated image must stay clear of the device window.
        debug_assert!(end_addr < SYNC_DEVICE_BASE);

        let mut addr_map = HashMap::new();
        let mut blocks = Vec::with_capacity(cfg.blocks.len());
        for block in &cfg.blocks {
            let tgt = label_addr(block.id, &schedule.labels)?;
            addr_map.insert(block.start, tgt);
            blocks.push(BlockInfo {
                id: block.id,
                src_start: block.start,
                src_end: block.end,
                tgt_addr: tgt,
                static_cycles: cycles[block.id].cycles,
                analysis_blocks: if self.level.simulates_icache() {
                    analysis_blocks(block, &self.arch.cache).len()
                } else {
                    0
                },
            });
        }

        let data_sections = elf
            .sections
            .iter()
            .filter_map(|s| match s.kind {
                SectionKind::Data => Some((s.addr, s.data.clone())),
                SectionKind::Bss => Some((s.addr, vec![0u8; s.size as usize])),
                SectionKind::Text => None,
            })
            .collect();

        let stats = TranslationStats {
            source_instructions: cfg.instr_count(),
            blocks: cfg.blocks.len(),
            target_slots: packets.iter().map(|p| p.slots().len()).sum(),
            target_packets: packets.len(),
            io_accesses: base_info.io_accesses,
            unknown_bases: base_info.unknown,
        };

        Ok(Translated {
            packets,
            entry: self.image_base,
            blocks,
            addr_map,
            cache_layout,
            level: self.level,
            stats,
            data_sections,
            base_info,
        })
    }

    /// Lowers a block terminator: compare, branch-prediction correction
    /// (§3.4.1), correction block + synchronization waits (Fig. 3) and
    /// the control transfer itself.
    fn lower_terminator(
        &self,
        cfg: &Cfg,
        block: &Block,
        bc: &BlockCycles,
        sched: &mut Scheduler,
        temps: &mut TempAlloc,
    ) -> Result<(), TranslateError> {
        let term = block.terminator().copied();
        // In the per-instruction debug translation every stop point must
        // expose committed architectural state (§3.5): drain delay slots
        // at each block boundary.
        if self.granularity == Granularity::PerInstruction {
            sched.flush_architectural();
        }
        let push = |s: &mut Scheduler, t: TOp| s.push(Item::Op(t));
        let ret_block_label = |end: u32| -> Result<usize, TranslateError> {
            cfg.block_at(end)
                .map(|b| b.id)
                .ok_or(TranslateError::BadBranchTarget {
                    from: block.start,
                    to: end,
                })
        };
        let target_label = |ir: &crate::cfg::IrInstr| -> Result<usize, TranslateError> {
            let t = ir.instr.target(ir.addr).expect("direct branch");
            cfg.block_at(t)
                .map(|b| b.id)
                .ok_or(TranslateError::BadBranchTarget {
                    from: ir.addr,
                    to: t,
                })
        };

        // 1. Compare / decrement producing the predicate, for conditionals.
        let mut cond_pred: Option<Pred> = None;
        if let Some(ir) = &term {
            match ir.instr {
                Instr::Jcond { cond, s1, s2, .. } => {
                    let (op, negated) = cmp_for(cond, dreg(s1), dreg(s2));
                    push(sched, TOp::new(op))?;
                    cond_pred = Some(Pred {
                        reg: PRED_MAIN,
                        negated,
                    });
                }
                Instr::JcondZ { cond, s1, .. } => {
                    let (op, negated) = cmp_for(cond, dreg(s1), ZERO_REG);
                    push(sched, TOp::new(op))?;
                    cond_pred = Some(Pred {
                        reg: PRED_MAIN,
                        negated,
                    });
                }
                Instr::Loop { a, .. } => {
                    push(
                        sched,
                        TOp::new(Op::AddI {
                            d: areg(a),
                            s1: areg(a),
                            imm5: -1,
                        }),
                    )?;
                    push(
                        sched,
                        TOp::new(Op::Mv {
                            d: PRED_MAIN,
                            s: areg(a),
                        }),
                    )?;
                    cond_pred = Some(Pred::nz(PRED_MAIN));
                }
                _ => {}
            }
        }

        // 2. Branch-prediction correction code (§3.4.1): the outcome with
        //    nonzero extra adds to the correction counter.
        if self.level.corrects_dynamically() {
            if let (Some(pred), Some(t_extra), Some(nt_extra)) =
                (cond_pred, bc.taken_extra, bc.nottaken_extra)
            {
                // `pred` is true exactly when the branch is taken.
                if t_extra > 0 {
                    push(
                        sched,
                        TOp::when(
                            pred,
                            Op::AddI {
                                d: CORR_REG,
                                s1: CORR_REG,
                                imm5: t_extra.min(15) as i8,
                            },
                        ),
                    )?;
                }
                if nt_extra > 0 {
                    let negated = Pred {
                        reg: pred.reg,
                        negated: !pred.negated,
                    };
                    push(
                        sched,
                        TOp::when(
                            negated,
                            Op::AddI {
                                d: CORR_REG,
                                s1: CORR_REG,
                                imm5: nt_extra.min(15) as i8,
                            },
                        ),
                    )?;
                }
            }
        }

        // 3. Correction block and synchronization waits (Fig. 3 order:
        //    start correction generation, wait for main, wait for
        //    correction).
        if self.level.corrects_dynamically() {
            push(
                sched,
                TOp::new(Op::St {
                    w: Width::W,
                    s: CORR_REG,
                    base: SYNC_BASE_REG,
                    woff: 2,
                })
                .volatile(),
            )?;
            let t1 = temps.b();
            push(
                sched,
                TOp::new(Op::Ld {
                    w: Width::W,
                    unsigned: false,
                    d: t1,
                    base: SYNC_BASE_REG,
                    woff: 1,
                })
                .volatile(),
            )?;
            let t2 = temps.b();
            push(
                sched,
                TOp::new(Op::Ld {
                    w: Width::W,
                    unsigned: false,
                    d: t2,
                    base: SYNC_BASE_REG,
                    woff: 3,
                })
                .volatile(),
            )?;
            push(
                sched,
                TOp::new(Op::Mv {
                    d: CORR_REG,
                    s: ZERO_REG,
                }),
            )?;
        } else if self.level.generates_cycles() {
            let t1 = temps.b();
            push(
                sched,
                TOp::new(Op::Ld {
                    w: Width::W,
                    unsigned: false,
                    d: t1,
                    base: SYNC_BASE_REG,
                    woff: 1,
                })
                .volatile(),
            )?;
        }

        // 4. The control transfer. A taken branch reaches its target in
        // six cycles (branch row + shadow), but the target block was
        // scheduled against this block's *layout* cycle count — a
        // long-latency result still in flight (the divider's 17 delay
        // slots outlive any shadow) would be read stale across the
        // transfer. Drain in-flight architectural writes first so every
        // successor reads committed state; blocks with no pending
        // long-latency writes pad nothing.
        if term.is_some() {
            sched.flush_architectural();
        }
        match term.map(|ir| (ir, ir.instr)) {
            None => {} // fallthrough into the next block
            Some((_, Instr::Debug16)) => {
                // All in-flight writes must land before the core stops.
                sched.flush_architectural();
                push(sched, TOp::new(Op::Halt))?;
            }
            Some((ir, Instr::J { .. })) => {
                let l = target_label(&ir)?;
                push(
                    sched,
                    TOp::new(Op::B { disp21: 0 }).with_fixup(FixupKind::Branch, l),
                )?;
                push(sched, TOp::new(Op::Nop { count: 5 }))?;
            }
            Some((ir, Instr::Jl { .. })) => {
                let ret = ret_block_label(block.end)?;
                push(
                    sched,
                    TOp::new(Op::Mvk {
                        d: areg(RA),
                        imm16: 0,
                    })
                    .with_fixup(FixupKind::MvkLo, ret),
                )?;
                push(
                    sched,
                    TOp::new(Op::Mvkh {
                        d: areg(RA),
                        imm16: 0,
                    })
                    .with_fixup(FixupKind::MvkHi, ret),
                )?;
                let l = target_label(&ir)?;
                push(
                    sched,
                    TOp::new(Op::B { disp21: 0 }).with_fixup(FixupKind::Branch, l),
                )?;
                push(sched, TOp::new(Op::Nop { count: 5 }))?;
            }
            Some((_, Instr::Ji { a })) => {
                push(sched, TOp::new(Op::BReg { s: areg(a) }))?;
                push(sched, TOp::new(Op::Nop { count: 5 }))?;
            }
            Some((_, Instr::Jli { a })) => {
                let ret = ret_block_label(block.end)?;
                push(
                    sched,
                    TOp::new(Op::Mvk {
                        d: areg(RA),
                        imm16: 0,
                    })
                    .with_fixup(FixupKind::MvkLo, ret),
                )?;
                push(
                    sched,
                    TOp::new(Op::Mvkh {
                        d: areg(RA),
                        imm16: 0,
                    })
                    .with_fixup(FixupKind::MvkHi, ret),
                )?;
                push(sched, TOp::new(Op::BReg { s: areg(a) }))?;
                push(sched, TOp::new(Op::Nop { count: 5 }))?;
            }
            Some((_, Instr::Ret16)) => {
                push(sched, TOp::new(Op::BReg { s: areg(RA) }))?;
                push(sched, TOp::new(Op::Nop { count: 5 }))?;
            }
            Some((ir, Instr::Jcond { .. }))
            | Some((ir, Instr::JcondZ { .. }))
            | Some((ir, Instr::Loop { .. })) => {
                let l = target_label(&ir)?;
                let pred = cond_pred.expect("set above");
                sched.push(Item::Op(TOp {
                    pred: Some(pred),
                    op: Op::B { disp21: 0 },
                    fixup: Some((FixupKind::Branch, l)),
                    volatile: false,
                }))?;
                push(sched, TOp::new(Op::Nop { count: 5 }))?;
            }
            Some((_, other)) => {
                return Err(TranslateError::Sched(format!(
                    "unexpected terminator {other}"
                )))
            }
        }
        Ok(())
    }
}

/// Maps a source condition to (compare op into `PRED_MAIN`, predicate
/// negation).
fn cmp_for(cond: Cond, s1: Reg, s2: Reg) -> (Op, bool) {
    match cond {
        Cond::Eq => (
            Op::CmpEq {
                d: PRED_MAIN,
                s1,
                s2,
            },
            false,
        ),
        Cond::Ne => (
            Op::CmpEq {
                d: PRED_MAIN,
                s1,
                s2,
            },
            true,
        ),
        Cond::Lt => (
            Op::CmpLt {
                d: PRED_MAIN,
                s1,
                s2,
            },
            false,
        ),
        Cond::Ge => (
            Op::CmpLt {
                d: PRED_MAIN,
                s1,
                s2,
            },
            true,
        ),
        Cond::LtU => (
            Op::CmpLtU {
                d: PRED_MAIN,
                s1,
                s2,
            },
            false,
        ),
        Cond::GeU => (
            Op::CmpLtU {
                d: PRED_MAIN,
                s1,
                s2,
            },
            true,
        ),
    }
}

fn access_volatile(info: &BaseAddrInfo, addr: u32) -> bool {
    matches!(
        info.class_of(addr),
        Some(AccessClass::Io { .. }) | Some(AccessClass::Unknown)
    )
}

/// Emits `reg = value` with one or two moves.
fn emit_const32(sched: &mut Scheduler, reg: Reg, value: u32) -> Result<(), TranslateError> {
    let as_i32 = value as i32;
    if (-32768..=32767).contains(&as_i32) {
        sched.push(Item::Op(TOp::new(Op::Mvk {
            d: reg,
            imm16: as_i32 as i16,
        })))
    } else {
        sched.push(Item::Op(TOp::new(Op::Mvk {
            d: reg,
            imm16: (value & 0xffff) as u16 as i16,
        })))?;
        sched.push(Item::Op(TOp::new(Op::Mvkh {
            d: reg,
            imm16: (value >> 16) as u16,
        })))
    }
}

/// Computes each row's packet address and the end address.
fn row_addresses(rows: &[Vec<Slot>], base: u32) -> (Vec<u32>, u32) {
    let mut addrs = Vec::with_capacity(rows.len());
    let mut cur = base;
    for row in rows {
        addrs.push(cur);
        cur += 8 * row.len().max(1) as u32;
    }
    (addrs, cur)
}

#[cfg(test)]
mod tests {
    use super::*;
    use cabt_tricore::asm::assemble;

    fn translate(src: &str, level: DetailLevel) -> Translated {
        let elf = assemble(src).expect("assembles");
        Translator::new(level).translate(&elf).expect("translates")
    }

    fn run(t: &Translated) -> VliwSim {
        let mut sim = t.make_sim().unwrap();
        sim.run(10_000_000).expect("halts");
        sim
    }

    const SUM_SRC: &str = "
        .text
    _start:
        mov %d0, 10
        mov %d2, 0
    top:
        add %d2, %d0
        addi %d0, %d0, -1
        jnz %d0, top
        debug
    ";

    #[test]
    fn functional_translation_computes_same_result() {
        for level in DetailLevel::ALL {
            let t = translate(SUM_SRC, level);
            let sim = run(&t);
            assert_eq!(
                sim.reg(dreg(cabt_tricore::isa::DReg(2))),
                55,
                "level {level}"
            );
        }
    }

    #[test]
    fn translation_matches_golden_architectural_state() {
        let elf = assemble(SUM_SRC).unwrap();
        let mut gold = cabt_tricore::sim::Simulator::new(&elf).unwrap();
        gold.run(100_000).unwrap();
        let t = translate(SUM_SRC, DetailLevel::Static);
        let sim = run(&t);
        for i in 0..16u8 {
            assert_eq!(
                sim.reg(dreg(cabt_tricore::isa::DReg(i))),
                gold.cpu.d(i),
                "d{i} mismatch"
            );
        }
    }

    #[test]
    fn calls_and_returns_work() {
        let src = "
            .text
        _start:
            mov %d2, 1
            call double
            call double
            call double
            debug
        double:
            add %d2, %d2
            ret
        ";
        let t = translate(src, DetailLevel::Static);
        let sim = run(&t);
        assert_eq!(sim.reg(dreg(cabt_tricore::isa::DReg(2))), 8);
    }

    #[test]
    fn memory_programs_translate() {
        let src = "
            .text
        _start:
            movh.a %a2, hi:arr
            lea  %a2, [%a2]lo:arr
            mov  %d2, 0
            mov  %d0, 4
            mov.a %a3, %d0
        sum:
            ld.w %d1, [%a2+]4
            add  %d2, %d1
            loop %a3, sum
            debug
            .data
        arr: .word 10, 20, 30, 40
        ";
        for level in [DetailLevel::Functional, DetailLevel::Cache] {
            let t = translate(src, level);
            let sim = run(&t);
            assert_eq!(
                sim.reg(dreg(cabt_tricore::isa::DReg(2))),
                100,
                "level {level}"
            );
        }
    }

    #[test]
    fn functional_level_emits_no_sync_accesses() {
        let t = translate(SUM_SRC, DetailLevel::Functional);
        let touches_sync = t.packets.iter().any(|p| {
            p.slots().iter().any(|s| match s.op {
                Op::St { base, .. } | Op::Ld { base, .. } => base == SYNC_BASE_REG,
                _ => false,
            })
        });
        assert!(!touches_sync);
        let t = translate(SUM_SRC, DetailLevel::Static);
        let touches_sync = t.packets.iter().any(|p| {
            p.slots().iter().any(|s| match s.op {
                Op::St { base, .. } | Op::Ld { base, .. } => base == SYNC_BASE_REG,
                _ => false,
            })
        });
        assert!(touches_sync);
    }

    #[test]
    fn block_info_carries_static_cycles() {
        let t = translate(SUM_SRC, DetailLevel::Static);
        assert_eq!(t.blocks.len(), 3);
        for b in &t.blocks {
            assert!(b.static_cycles > 0);
            assert!(t.target_of(b.src_start).is_some());
        }
    }

    #[test]
    fn cache_level_appends_subroutine_and_layout() {
        let t = translate(SUM_SRC, DetailLevel::Cache);
        let layout = t.cache_layout.expect("cache layout present");
        let code_end: u32 = t.entry + t.packets.iter().map(cabt_vliw::Packet::size).sum::<u32>();
        assert_eq!(layout.base, code_end);
        assert!(t.blocks.iter().all(|b| b.analysis_blocks >= 1));
    }

    #[test]
    fn per_instruction_granularity_runs() {
        let elf = assemble(SUM_SRC).unwrap();
        let t = Translator::new(DetailLevel::Static)
            .with_granularity(Granularity::PerInstruction)
            .translate(&elf)
            .unwrap();
        let sim = run(&t);
        assert_eq!(sim.reg(dreg(cabt_tricore::isa::DReg(2))), 55);
        assert!(t.blocks.len() > 3, "every instruction is a block");
    }

    #[test]
    fn elf_round_trip_of_translation() {
        let t = translate(SUM_SRC, DetailLevel::Static);
        let elf = t.to_elf().unwrap();
        let bytes = elf.to_bytes().unwrap();
        let back = ElfFile::parse(&bytes).unwrap();
        assert_eq!(back.machine, EM_TI_C6000);
        let text = back.section(".text").unwrap();
        let packets = cabt_vliw::encode::decode_program(text.addr, &text.data).unwrap();
        assert_eq!(packets, t.packets);
    }

    #[test]
    fn stats_are_populated() {
        let t = translate(SUM_SRC, DetailLevel::Static);
        assert_eq!(t.stats.blocks, 3);
        assert_eq!(t.stats.source_instructions, 6);
        assert!(t.stats.target_slots > 6);
        assert!(t.stats.target_packets > 3);
    }

    #[test]
    fn cache_inline_variant_runs_and_is_faster() {
        let elf = assemble(SUM_SRC).unwrap();
        let call = Translator::new(DetailLevel::Cache).translate(&elf).unwrap();
        let inline = Translator::new(DetailLevel::Cache)
            .with_cache_inline(true)
            .translate(&elf)
            .unwrap();
        let mut s1 = call.make_sim().unwrap();
        let c1 = s1.run(10_000_000).unwrap().cycles;
        let mut s2 = inline.make_sim().unwrap();
        let c2 = s2.run(10_000_000).unwrap().cycles;
        assert_eq!(
            s1.reg(dreg(cabt_tricore::isa::DReg(2))),
            s2.reg(dreg(cabt_tricore::isa::DReg(2)))
        );
        assert!(c2 < c1, "inline ({c2}) should beat call ({c1})");
    }
}

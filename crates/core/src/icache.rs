//! Instruction-cache simulation (§3.4.2 of the paper).
//!
//! Three pieces, exactly as the paper lays them out:
//!
//! 1. **Saving cache data** — space appended after the translated
//!    program holds, per set, one word per way (`tag | valid`) and one
//!    LRU word ([`CacheLayout`]).
//! 2. **Cache analysis blocks** — each basic block is divided into
//!    pieces that fit into a single cache line ([`analysis_blocks`]);
//!    an instruction straddling a line boundary charges both lines, as
//!    the reference model does.
//! 3. **Cycle calculation code** — a generated subroutine (Fig. 4)
//!    receives the tag and set of an analysis block, probes the
//!    simulated cache, updates LRU/valid state and adds the miss penalty
//!    to the cycle correction counter ([`correction_subroutine`]). Call
//!    sites are emitted by the translator before each analysis block;
//!    for the inline ablation the same body is emitted without the
//!    call/return wrapper ([`correction_inline`]).
//!
//! The generated code supports 1- and 2-way caches (the paper's example
//! is two-way); wider associativities are rejected at translation time.

use crate::cfg::Block;
use crate::regbind::{
    CACHE_ARG_SET, CACHE_ARG_TAG, CACHE_BASE_REG, CACHE_RET_REG, CACHE_TMP_REG, CORR_REG, ONE_REG,
    ZERO_REG,
};
use crate::sched::TOp;
use crate::TranslateError;
use cabt_tricore::arch::CacheConfig;
use cabt_tricore::isa::Instr;
use cabt_vliw::isa::{Op, Pred, Reg, Width};

/// The valid bit stored alongside each tag word (bit 31, as tags of
/// 32-bit addresses divided by line and set sizes never reach it).
pub const VALID_BIT: u32 = 1 << 31;

/// Memory layout of the simulated cache state.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct CacheLayout {
    /// Geometry being simulated.
    pub cfg: CacheConfig,
    /// Base address of the state array in target memory.
    pub base: u32,
}

impl CacheLayout {
    /// Bytes per set: one word per way plus the LRU word.
    pub fn set_stride(&self) -> u32 {
        4 * (self.cfg.ways + 1)
    }

    /// Total size of the state array in bytes.
    pub fn total_bytes(&self) -> u32 {
        self.cfg.sets * self.set_stride()
    }

    /// The word the correction code compares against: `tag | VALID`.
    pub fn tag_word(&self, addr: u32) -> u32 {
        self.cfg.tag_of(addr) | VALID_BIT
    }
}

/// One cache analysis block: a run of instructions within a single cache
/// line (plus, possibly, a zero-instruction block for the tail of a
/// straddling instruction).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct AnalysisBlock {
    /// The cache line address this block probes.
    pub line: u32,
    /// Index (within the basic block) of the first instruction belonging
    /// to this analysis block; equal to the previous block's `end` for
    /// straddle-tail blocks.
    pub start: usize,
    /// One past the last instruction index.
    pub end: usize,
}

/// Divides a basic block into cache analysis blocks in first-touch
/// order, charging straddling instructions to both lines.
pub fn analysis_blocks(block: &Block, cfg: &CacheConfig) -> Vec<AnalysisBlock> {
    let mut out: Vec<AnalysisBlock> = Vec::new();
    let mut current_line: Option<u32> = None;
    for (i, ir) in block.instrs.iter().enumerate() {
        let first = cfg.line_of(ir.addr);
        let last = cfg.line_of(ir.addr + ir.instr.size() - 1);
        if current_line != Some(first) {
            if let Some(b) = out.last_mut() {
                b.end = i;
            }
            out.push(AnalysisBlock {
                line: first,
                start: i,
                end: i + 1,
            });
            current_line = Some(first);
        }
        if last != first {
            // Straddling instruction: the tail bytes open a block for the
            // next line; the instruction itself stays in the first block.
            if let Some(b) = out.last_mut() {
                b.end = i + 1;
            }
            out.push(AnalysisBlock {
                line: last,
                start: i + 1,
                end: i + 1,
            });
            current_line = Some(last);
        }
    }
    if let Some(b) = out.last_mut() {
        b.end = block.instrs.len();
    }
    out
}

/// Validates that the generated correction code supports `cfg`.
///
/// # Errors
///
/// Returns [`TranslateError::UnsupportedCache`] for associativities
/// other than 1 or 2.
pub fn check_supported(cfg: &CacheConfig) -> Result<(), TranslateError> {
    if cfg.ways == 1 || cfg.ways == 2 {
        Ok(())
    } else {
        Err(TranslateError::UnsupportedCache { ways: cfg.ways })
    }
}

/// Registers used privately by the correction code (documented in
/// [`crate::regbind`]): probes land in `A6..A15` scratch.
const T_ADDR: Reg = Reg::a(6);
const T_TAG0: Reg = Reg::a(7);
const T_TAG1: Reg = Reg::a(8);
const T_SCALED: Reg = Reg::a(9);
const T_VICT: Reg = Reg::a(10);
const T_VADDR: Reg = Reg::a(11);
const T_NEWLRU: Reg = Reg::a(12);
const P_HIT0: Reg = Reg::a(0);
const P_HIT1: Reg = Reg::a(1);
const P_MISS: Reg = Reg::a(2);

/// Emits the body of the cache correction routine (Fig. 4) as target
/// operations. Inputs: [`CACHE_ARG_TAG`] = `tag | VALID`,
/// [`CACHE_ARG_SET`] = set index. Clobbers the probe temporaries and the
/// predicate registers `A0..A2`; adds the miss penalty to [`CORR_REG`].
///
/// The `ways = 1` body skips the second-way probe and the LRU word is
/// unused (the victim is always way 0).
pub fn correction_body(layout: &CacheLayout) -> Vec<TOp> {
    let cfg = layout.cfg;
    let stride = layout.set_stride();
    let mut ops = Vec::new();
    let o = |op: Op| TOp::new(op);

    // T_ADDR = CACHE_BASE + set * stride. Strides are 8 (1-way) or 12
    // (2-way): decompose into shifts.
    match stride {
        8 => {
            ops.push(o(Op::ShlI {
                d: T_ADDR,
                s1: CACHE_ARG_SET,
                imm5: 3,
            }));
            ops.push(o(Op::Add {
                d: T_ADDR,
                s1: T_ADDR,
                s2: CACHE_BASE_REG,
            }));
        }
        12 => {
            ops.push(o(Op::ShlI {
                d: T_ADDR,
                s1: CACHE_ARG_SET,
                imm5: 3,
            }));
            ops.push(o(Op::ShlI {
                d: T_SCALED,
                s1: CACHE_ARG_SET,
                imm5: 2,
            }));
            ops.push(o(Op::Add {
                d: T_ADDR,
                s1: T_ADDR,
                s2: T_SCALED,
            }));
            ops.push(o(Op::Add {
                d: T_ADDR,
                s1: T_ADDR,
                s2: CACHE_BASE_REG,
            }));
        }
        other => {
            // Generic (unused today, kept for forward compatibility):
            // multiply by the stride.
            ops.push(o(Op::Mvk {
                d: T_SCALED,
                imm16: other as i16,
            }));
            ops.push(o(Op::Mpy {
                d: T_ADDR,
                s1: CACHE_ARG_SET,
                s2: T_SCALED,
            }));
            ops.push(o(Op::Add {
                d: T_ADDR,
                s1: T_ADDR,
                s2: CACHE_BASE_REG,
            }));
        }
    }

    // Probe the tags.
    ops.push(o(Op::Ld {
        w: Width::W,
        unsigned: false,
        d: T_TAG0,
        base: T_ADDR,
        woff: 0,
    }));
    if cfg.ways == 2 {
        ops.push(o(Op::Ld {
            w: Width::W,
            unsigned: false,
            d: T_TAG1,
            base: T_ADDR,
            woff: 1,
        }));
    }
    ops.push(o(Op::CmpEq {
        d: P_HIT0,
        s1: T_TAG0,
        s2: CACHE_ARG_TAG,
    }));
    if cfg.ways == 2 {
        ops.push(o(Op::CmpEq {
            d: P_HIT1,
            s1: T_TAG1,
            s2: CACHE_ARG_TAG,
        }));
        ops.push(o(Op::Or {
            d: P_MISS,
            s1: P_HIT0,
            s2: P_HIT1,
        }));
        // Hit: renew LRU — the LRU word names the *victim* way, i.e. the
        // way not just used.
        ops.push(TOp::when(
            Pred::nz(P_HIT0),
            Op::St {
                w: Width::W,
                s: ONE_REG,
                base: T_ADDR,
                woff: 2,
            },
        ));
        ops.push(TOp::when(
            Pred::nz(P_HIT1),
            Op::St {
                w: Width::W,
                s: ZERO_REG,
                base: T_ADDR,
                woff: 2,
            },
        ));
        // Miss: read the victim index, overwrite its tag, flip the LRU,
        // and charge the penalty.
        ops.push(TOp::when(
            Pred::z(P_MISS),
            Op::Ld {
                w: Width::W,
                unsigned: false,
                d: T_VICT,
                base: T_ADDR,
                woff: 2,
            },
        ));
        ops.push(TOp::when(
            Pred::z(P_MISS),
            Op::ShlI {
                d: T_VADDR,
                s1: T_VICT,
                imm5: 2,
            },
        ));
        ops.push(TOp::when(
            Pred::z(P_MISS),
            Op::Add {
                d: T_VADDR,
                s1: T_VADDR,
                s2: T_ADDR,
            },
        ));
        ops.push(TOp::when(
            Pred::z(P_MISS),
            Op::St {
                w: Width::W,
                s: CACHE_ARG_TAG,
                base: T_VADDR,
                woff: 0,
            },
        ));
        ops.push(TOp::when(
            Pred::z(P_MISS),
            Op::Sub {
                d: T_NEWLRU,
                s1: ONE_REG,
                s2: T_VICT,
            },
        ));
        ops.push(TOp::when(
            Pred::z(P_MISS),
            Op::St {
                w: Width::W,
                s: T_NEWLRU,
                base: T_ADDR,
                woff: 2,
            },
        ));
    } else {
        // Direct-mapped: a miss is simply "tag differs".
        ops.push(o(Op::Mv {
            d: P_MISS,
            s: P_HIT0,
        }));
        ops.push(TOp::when(
            Pred::z(P_MISS),
            Op::St {
                w: Width::W,
                s: CACHE_ARG_TAG,
                base: T_ADDR,
                woff: 0,
            },
        ));
    }

    // Charge the miss penalty to the correction counter.
    let pen = cfg.miss_penalty;
    if pen <= 15 {
        ops.push(TOp::when(
            Pred::z(P_MISS),
            Op::AddI {
                d: CORR_REG,
                s1: CORR_REG,
                imm5: pen as i8,
            },
        ));
    } else {
        ops.push(TOp::when(
            Pred::z(P_MISS),
            Op::Mvk {
                d: CACHE_TMP_REG,
                imm16: pen as i16,
            },
        ));
        ops.push(TOp::when(
            Pred::z(P_MISS),
            Op::Add {
                d: CORR_REG,
                s1: CORR_REG,
                s2: CACHE_TMP_REG,
            },
        ));
    }
    ops
}

/// The full subroutine: body plus return through [`CACHE_RET_REG`] and
/// its delay slots.
pub fn correction_subroutine(layout: &CacheLayout) -> Vec<TOp> {
    let mut ops = correction_body(layout);
    ops.push(TOp::new(Op::BReg { s: CACHE_RET_REG }));
    ops.push(TOp::new(Op::Nop { count: 5 }));
    ops
}

/// The inline variant (paper: "in large basic blocks, this code can be
/// included into the basic block making the subroutine call
/// unnecessary"): body only, arguments pre-set the same way.
pub fn correction_inline(layout: &CacheLayout) -> Vec<TOp> {
    correction_body(layout)
}

/// Reference behaviour of the generated code, used by tests and by the
/// golden-equivalence suite: runs the same probe/update algorithm on a
/// plain array, returning `true` on hit.
pub fn reference_access(layout: &CacheLayout, state: &mut [u32], addr: u32) -> bool {
    let cfg = layout.cfg;
    let stride_words = (cfg.ways + 1) as usize;
    let set = cfg.set_of(addr) as usize;
    let tagw = layout.tag_word(addr);
    let base = set * stride_words;
    if cfg.ways == 1 {
        let hit = state[base] == tagw;
        if !hit {
            state[base] = tagw;
        }
        return hit;
    }
    let lru_idx = base + 2;
    if state[base] == tagw {
        state[lru_idx] = 1;
        true
    } else if state[base + 1] == tagw {
        state[lru_idx] = 0;
        true
    } else {
        let vict = state[lru_idx] as usize & 1;
        state[base + vict] = tagw;
        state[lru_idx] = 1 - vict as u32;
        false
    }
}

/// Initial contents of the cache state array: all tags invalid, LRU
/// words zero (victim = way 0).
pub fn initial_state(layout: &CacheLayout) -> Vec<u32> {
    vec![0; (layout.total_bytes() / 4) as usize]
}

/// Checks whether an instruction stream's analysis blocks charge the
/// same (set, tag) sequence as the golden model's per-fetch accesses —
/// an internal consistency helper used by the accuracy tests.
pub fn touched_lines(instrs: &[(u32, Instr)], cfg: &CacheConfig) -> Vec<u32> {
    let mut out = Vec::new();
    let mut last = None;
    for (addr, instr) in instrs {
        for line in [cfg.line_of(*addr), cfg.line_of(addr + instr.size() - 1)] {
            if last != Some(line) {
                out.push(line);
                last = Some(line);
            }
        }
    }
    out.dedup();
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::cfg::Cfg;
    use crate::Granularity;
    use cabt_tricore::asm::assemble;

    fn layout() -> CacheLayout {
        CacheLayout {
            cfg: CacheConfig::default(),
            base: 0x0010_0000,
        }
    }

    #[test]
    fn layout_sizes() {
        let l = layout(); // 16 sets, 2 ways
        assert_eq!(l.set_stride(), 12);
        assert_eq!(l.total_bytes(), 16 * 12);
        assert!(l.tag_word(0x8000_0000) & VALID_BIT != 0);
    }

    #[test]
    fn analysis_blocks_split_on_lines() {
        // 32-byte lines; build a block longer than one line.
        let mut src = String::from(".text\n_start:\n");
        for _ in 0..20 {
            src.push_str("add %d1, %d2, %d3\n"); // 4 bytes each
        }
        src.push_str("debug\n");
        let cfg = Cfg::build(&assemble(&src).unwrap(), Granularity::BasicBlock).unwrap();
        let blocks = analysis_blocks(&cfg.blocks[0], &CacheConfig::default());
        // 20*4 + 2 = 82 bytes from 0x80000000 → lines 0,32,64 → 3 blocks.
        assert_eq!(blocks.len(), 3);
        assert_eq!(blocks[0].line, 0x8000_0000);
        assert_eq!(blocks[1].line, 0x8000_0020);
        assert_eq!(blocks[2].line, 0x8000_0040);
        assert_eq!(blocks[0].start, 0);
        assert_eq!(blocks[0].end, 8);
        assert_eq!(blocks[2].end, cfg.blocks[0].instrs.len());
    }

    #[test]
    fn straddling_instruction_charges_both_lines() {
        // 15 halfword NOPs (30 bytes) then a 4-byte instruction that
        // straddles the 32-byte boundary.
        let mut src = String::from(".text\n_start:\n");
        for _ in 0..15 {
            src.push_str("nop\n");
        }
        src.push_str("add %d1, %d2, %d3\ndebug\n");
        let cfg = Cfg::build(&assemble(&src).unwrap(), Granularity::BasicBlock).unwrap();
        let blocks = analysis_blocks(&cfg.blocks[0], &CacheConfig::default());
        assert_eq!(blocks.len(), 2);
        assert_eq!(blocks[1].line, 0x8000_0020);
        // The straddler stays in block 0; block 1 starts after it.
        assert_eq!(blocks[0].end, 16);
    }

    #[test]
    fn unsupported_ways_rejected() {
        let cfg = CacheConfig {
            ways: 4,
            ..CacheConfig::default()
        };
        assert!(matches!(
            check_supported(&cfg),
            Err(TranslateError::UnsupportedCache { ways: 4 })
        ));
        let cfg = CacheConfig { ways: 2, ..cfg };
        assert!(check_supported(&cfg).is_ok());
    }

    #[test]
    fn subroutine_ends_with_return() {
        let ops = correction_subroutine(&layout());
        let n = ops.len();
        assert!(matches!(ops[n - 2].op, Op::BReg { .. }));
        assert!(matches!(ops[n - 1].op, Op::Nop { count: 5 }));
        // Inline variant omits the return.
        let inline = correction_inline(&layout());
        assert!(!inline.iter().any(|t| matches!(t.op, Op::BReg { .. })));
    }

    #[test]
    fn reference_access_matches_golden_cache() {
        use cabt_tricore::arch::CacheSim;
        let l = CacheLayout {
            cfg: CacheConfig::default(),
            base: 0,
        };
        let mut state = initial_state(&l);
        let mut golden = CacheSim::new(l.cfg);
        // A pseudo-random-ish but deterministic line stream.
        let mut addr = 0x8000_0000u32;
        for i in 0..2000u32 {
            addr = addr.wrapping_add(i.wrapping_mul(52)) & 0x8000_3fff;
            let ours = reference_access(&l, &mut state, addr);
            let gold = golden.access(addr);
            assert_eq!(ours, gold, "divergence at access {i} addr {addr:#x}");
        }
    }

    #[test]
    fn direct_mapped_reference_matches_golden() {
        use cabt_tricore::arch::CacheSim;
        let cfg = CacheConfig {
            sets: 8,
            ways: 1,
            line_bytes: 16,
            miss_penalty: 8,
        };
        let l = CacheLayout { cfg, base: 0 };
        let mut state = initial_state(&l);
        let mut golden = CacheSim::new(cfg);
        let mut addr = 0u32;
        for i in 0..500u32 {
            addr = addr.wrapping_add(i.wrapping_mul(28)) & 0x7ff;
            assert_eq!(reference_access(&l, &mut state, addr), golden.access(addr));
        }
    }

    #[test]
    fn penalty_above_addi_range_uses_constant_load() {
        let cfg = CacheConfig {
            miss_penalty: 40,
            ..CacheConfig::default()
        };
        let l = CacheLayout { cfg, base: 0 };
        let ops = correction_body(&l);
        assert!(ops
            .iter()
            .any(|t| matches!(t.op, Op::Mvk { imm16: 40, .. })));
    }

    #[test]
    fn touched_lines_dedups_consecutive() {
        use cabt_tricore::isa::{BinOp, DReg, Instr};
        let add = Instr::Bin {
            op: BinOp::Add,
            d: DReg(1),
            s1: DReg(2),
            s2: DReg(3),
        };
        let cfg = CacheConfig::default();
        let instrs: Vec<(u32, Instr)> = (0..10).map(|i| (0x100 + i * 4, add)).collect();
        let lines = touched_lines(&instrs, &cfg);
        assert_eq!(lines, vec![0x100, 0x120]);
    }
}

//! The event-driven simulation kernel: signals, processes, delta cycles.
//!
//! This is the core mechanism of every HDL simulator: processes are
//! woken by value changes on signals in their sensitivity list, signal
//! writes are staged and committed between delta cycles, and simulated
//! time only advances once the delta iteration reaches a fixed point.

use cabt_isa::codec::{ByteReader, ByteWriter, CodecError};
use std::collections::HashSet;
use std::fmt;

/// Handle to a signal.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct SignalId(usize);

/// Handle to a process.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct ProcId(usize);

/// Context passed to a running process: read committed signal values and
/// stage writes for the next delta.
pub struct ProcCtx<'a> {
    current: &'a [u64],
    staged: &'a mut Vec<(SignalId, u64)>,
}

impl ProcCtx<'_> {
    /// Reads the committed value of `sig`.
    pub fn get(&self, sig: SignalId) -> u64 {
        self.current[sig.0]
    }

    /// Stages a write; it becomes visible in the next delta cycle.
    pub fn set(&mut self, sig: SignalId, value: u64) {
        self.staged.push((sig, value));
    }
}

type Process = Box<dyn FnMut(&mut ProcCtx<'_>) + Send>;

/// Mutable kernel state captured by [`Kernel::save_state`]: everything
/// a resumed simulation needs besides the (immutable) processes and
/// sensitivity lists.
#[derive(Debug, Clone)]
pub struct KernelState {
    values: Vec<u64>,
    runnable: Vec<usize>,
    time: u64,
    deltas: u64,
}

impl KernelState {
    /// Serializes the kernel state for a portable snapshot. The
    /// runnable set is already sorted by [`Kernel::save_state`], so the
    /// encoding is deterministic.
    pub fn encode_into(&self, out: &mut Vec<u8>) {
        let mut w = ByteWriter::new(out);
        w.u64(self.values.len() as u64);
        for &v in &self.values {
            w.u64(v);
        }
        w.u64(self.runnable.len() as u64);
        for &p in &self.runnable {
            w.u64(p as u64);
        }
        w.u64(self.time);
        w.u64(self.deltas);
    }

    /// Decodes a [`KernelState::encode_into`] image.
    ///
    /// # Errors
    ///
    /// Returns a [`CodecError`] on truncated or corrupt input.
    pub fn decode(r: &mut ByteReader<'_>) -> Result<Self, CodecError> {
        let nvalues = r.count("kernel signals", 8)?;
        let mut values = Vec::with_capacity(nvalues);
        for _ in 0..nvalues {
            values.push(r.u64()?);
        }
        let nrunnable = r.count("runnable processes", 8)?;
        let mut runnable = Vec::with_capacity(nrunnable);
        for _ in 0..nrunnable {
            runnable.push(r.u64()? as usize);
        }
        Ok(KernelState {
            values,
            runnable,
            time: r.u64()?,
            deltas: r.u64()?,
        })
    }
}

/// Error raised when the delta iteration does not converge (a
/// combinational loop in the model).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct DeltaOverflow {
    /// The delta-cycle budget that was exhausted.
    pub limit: u32,
}

impl fmt::Display for DeltaOverflow {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "delta cycles did not converge within {} iterations",
            self.limit
        )
    }
}

impl std::error::Error for DeltaOverflow {}

/// The simulation kernel.
///
/// # Example
///
/// ```
/// use cabt_rtlsim::kernel::Kernel;
///
/// let mut k = Kernel::new();
/// let a = k.signal(1);
/// let b = k.signal(0);
/// // b follows a, doubled.
/// let p = k.process(move |ctx| {
///     let v = ctx.get(a);
///     ctx.set(b, v * 2);
/// });
/// k.make_sensitive(p, a);
/// k.poke(a, 21);
/// k.settle()?;
/// assert_eq!(k.value(b), 42);
/// # Ok::<(), cabt_rtlsim::kernel::DeltaOverflow>(())
/// ```
#[derive(Default)]
pub struct Kernel {
    values: Vec<u64>,
    procs: Vec<Option<Process>>,
    sensitivity: Vec<Vec<ProcId>>,
    runnable: HashSet<usize>,
    time: u64,
    deltas: u64,
    delta_limit: u32,
}

impl fmt::Debug for Kernel {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("Kernel")
            .field("signals", &self.values.len())
            .field("processes", &self.procs.len())
            .field("time", &self.time)
            .field("deltas", &self.deltas)
            .finish()
    }
}

impl Kernel {
    /// An empty kernel (delta budget 1000).
    pub fn new() -> Self {
        Kernel {
            delta_limit: 1000,
            ..Default::default()
        }
    }

    /// Declares a signal with an initial value.
    pub fn signal(&mut self, initial: u64) -> SignalId {
        self.values.push(initial);
        self.sensitivity.push(Vec::new());
        SignalId(self.values.len() - 1)
    }

    /// Registers a process. It does not run until a signal in its
    /// sensitivity list changes (or [`Kernel::schedule`] is called).
    pub fn process(&mut self, f: impl FnMut(&mut ProcCtx<'_>) + Send + 'static) -> ProcId {
        self.procs.push(Some(Box::new(f)));
        ProcId(self.procs.len() - 1)
    }

    /// Adds `sig` to the sensitivity list of `proc`.
    pub fn make_sensitive(&mut self, proc: ProcId, sig: SignalId) {
        self.sensitivity[sig.0].push(proc);
    }

    /// Marks a process runnable in the next delta.
    pub fn schedule(&mut self, proc: ProcId) {
        self.runnable.insert(proc.0);
    }

    /// Reads a signal's committed value.
    pub fn value(&self, sig: SignalId) -> u64 {
        self.values[sig.0]
    }

    /// Forces a signal value from outside the simulation (testbench
    /// stimulus), waking sensitive processes if it changes.
    pub fn poke(&mut self, sig: SignalId, value: u64) {
        if self.values[sig.0] != value {
            self.values[sig.0] = value;
            for p in &self.sensitivity[sig.0] {
                self.runnable.insert(p.0);
            }
        }
    }

    /// Runs delta cycles until no process is runnable.
    ///
    /// # Errors
    ///
    /// Returns [`DeltaOverflow`] if the iteration exceeds the delta
    /// budget (combinational loop).
    pub fn settle(&mut self) -> Result<(), DeltaOverflow> {
        let mut staged: Vec<(SignalId, u64)> = Vec::new();
        for _ in 0..self.delta_limit {
            if self.runnable.is_empty() {
                return Ok(());
            }
            self.deltas += 1;
            let running: Vec<usize> = self.runnable.drain().collect();
            staged.clear();
            for idx in running {
                let mut p = self.procs[idx].take().expect("process not reentrant");
                {
                    let mut ctx = ProcCtx {
                        current: &self.values,
                        staged: &mut staged,
                    };
                    p(&mut ctx);
                }
                self.procs[idx] = Some(p);
            }
            for &(sig, value) in &staged {
                if self.values[sig.0] != value {
                    self.values[sig.0] = value;
                    for p in &self.sensitivity[sig.0] {
                        self.runnable.insert(p.0);
                    }
                }
            }
        }
        Err(DeltaOverflow {
            limit: self.delta_limit,
        })
    }

    /// Advances one clock period on `clock`: rising edge, settle,
    /// falling edge, settle, bump time.
    ///
    /// # Errors
    ///
    /// Propagates delta overflow.
    pub fn tick(&mut self, clock: SignalId) -> Result<(), DeltaOverflow> {
        self.poke(clock, 1);
        self.settle()?;
        self.poke(clock, 0);
        self.settle()?;
        self.time += 1;
        Ok(())
    }

    /// Simulated clock periods elapsed.
    pub fn time(&self) -> u64 {
        self.time
    }

    /// Captures the kernel's mutable state: committed signal values,
    /// the runnable set and the time/delta counters. Processes and
    /// sensitivity lists are elaboration-time constants and are not
    /// captured — a state restored into the kernel that produced it
    /// resumes the simulation exactly.
    pub fn save_state(&self) -> KernelState {
        let mut runnable: Vec<usize> = self.runnable.iter().copied().collect();
        runnable.sort_unstable();
        KernelState {
            values: self.values.clone(),
            runnable,
            time: self.time,
            deltas: self.deltas,
        }
    }

    /// Restores state captured by [`Kernel::save_state`].
    ///
    /// # Panics
    ///
    /// Panics if `state` was saved from a kernel with a different
    /// signal count (a different elaboration).
    pub fn restore_state(&mut self, state: &KernelState) {
        assert_eq!(
            state.values.len(),
            self.values.len(),
            "kernel state from a different elaboration"
        );
        self.values.clone_from(&state.values);
        self.runnable = state.runnable.iter().copied().collect();
        self.time = state.time;
        self.deltas = state.deltas;
    }

    /// Total delta cycles executed (a measure of simulation work).
    pub fn delta_count(&self) -> u64 {
        self.deltas
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::atomic::{AtomicU32, Ordering};
    use std::sync::Arc;

    #[test]
    fn combinational_chain_settles() {
        let mut k = Kernel::new();
        let a = k.signal(0);
        let b = k.signal(0);
        let c = k.signal(0);
        let p1 = k.process(move |ctx| {
            let v = ctx.get(a);
            ctx.set(b, v + 1);
        });
        let p2 = k.process(move |ctx| {
            let v = ctx.get(b);
            ctx.set(c, v * 10);
        });
        k.make_sensitive(p1, a);
        k.make_sensitive(p2, b);
        k.poke(a, 5);
        k.settle().unwrap();
        assert_eq!(k.value(b), 6);
        assert_eq!(k.value(c), 60);
        assert!(k.delta_count() >= 2, "the chain takes two deltas");
    }

    #[test]
    fn no_wakeup_without_change() {
        let mut k = Kernel::new();
        let a = k.signal(7);
        let count = Arc::new(AtomicU32::new(0));
        let c2 = Arc::clone(&count);
        let p = k.process(move |_| {
            c2.fetch_add(1, Ordering::Relaxed);
        });
        k.make_sensitive(p, a);
        k.poke(a, 7); // same value: no wake
        k.settle().unwrap();
        assert_eq!(count.load(Ordering::Relaxed), 0);
        k.poke(a, 8);
        k.settle().unwrap();
        assert_eq!(count.load(Ordering::Relaxed), 1);
    }

    #[test]
    fn clocked_counter() {
        let mut k = Kernel::new();
        let clk = k.signal(0);
        let q = k.signal(0);
        let p = k.process(move |ctx| {
            if ctx.get(clk) == 1 {
                let v = ctx.get(q);
                ctx.set(q, v + 1);
            }
        });
        k.make_sensitive(p, clk);
        for _ in 0..5 {
            k.tick(clk).unwrap();
        }
        assert_eq!(k.value(q), 5);
        assert_eq!(k.time(), 5);
    }

    #[test]
    fn combinational_loop_detected() {
        let mut k = Kernel::new();
        let a = k.signal(0);
        let b = k.signal(0);
        let p1 = k.process(move |ctx| {
            let v = ctx.get(b);
            ctx.set(a, v + 1);
        });
        let p2 = k.process(move |ctx| {
            let v = ctx.get(a);
            ctx.set(b, v + 1);
        });
        k.make_sensitive(p1, b);
        k.make_sensitive(p2, a);
        k.poke(a, 1);
        assert!(k.settle().is_err());
    }

    #[test]
    fn last_write_wins_within_delta() {
        let mut k = Kernel::new();
        let a = k.signal(0);
        let b = k.signal(0);
        let p = k.process(move |ctx| {
            ctx.set(b, 1);
            ctx.set(b, 2);
        });
        k.make_sensitive(p, a);
        k.poke(a, 1);
        k.settle().unwrap();
        assert_eq!(k.value(b), 2);
    }

    #[test]
    fn schedule_runs_once() {
        let mut k = Kernel::new();
        let count = Arc::new(AtomicU32::new(0));
        let c2 = Arc::clone(&count);
        let p = k.process(move |_| {
            c2.fetch_add(1, Ordering::Relaxed);
        });
        k.schedule(p);
        k.settle().unwrap();
        assert_eq!(count.load(Ordering::Relaxed), 1);
        k.settle().unwrap();
        assert_eq!(count.load(Ordering::Relaxed), 1, "not rescheduled");
    }
}

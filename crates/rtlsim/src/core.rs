//! Stage-level RTL-style model of the source processor core.
//!
//! A classic multicycle datapath: FETCH → EXEC → (MEM) → WB, one state
//! per clock, each stage a separate process communicating only through
//! signals. The architectural register file is 32 individual signals;
//! instruction and data memory sit behind shared handles, as an HDL
//! testbench would bind them. Executing one instruction costs several
//! clock ticks and dozens of delta cycles — which is the point: this is
//! the "RT level simulation on a workstation" baseline of Table 2.

use crate::kernel::{DeltaOverflow, Kernel, KernelState, SignalId};
use cabt_exec::{EngineStats, ExecutionEngine};
use cabt_isa::codec::{ByteReader, ByteWriter, CodecError};
use cabt_isa::elf::ElfFile;
use cabt_isa::mem::Memory;
use cabt_isa::IsaError;
use cabt_tricore::encode::decode;
use cabt_tricore::isa::{Instr, LdKind, StKind, RA};
use std::collections::HashMap;
use std::fmt;
use std::sync::{Arc, Mutex};

const ST_FETCH: u64 = 0;
const ST_EXEC: u64 = 1;
const ST_MEM: u64 = 2;
const ST_WB: u64 = 3;
const ST_HALT: u64 = 4;
const ST_FAULT: u64 = 5;

const MEM_NONE: u64 = 0;
const MEM_LD: u64 = 1;
const MEM_ST: u64 = 2;

/// Errors raised by the RTL core.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum RtlError {
    /// The model's delta iteration diverged.
    Delta(DeltaOverflow),
    /// Fetch or execute faulted (bad pc or undecodable word).
    Fault {
        /// Program counter at the fault.
        pc: u32,
    },
    /// A testbench-side memory access failed.
    Mem(IsaError),
    /// The instruction budget of [`RtlCore::run`] was exhausted.
    InstructionLimit,
}

impl fmt::Display for RtlError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            RtlError::Delta(d) => write!(f, "{d}"),
            RtlError::Fault { pc } => write!(f, "core fault at pc {pc:#010x}"),
            RtlError::Mem(e) => write!(f, "memory fault: {e}"),
            RtlError::InstructionLimit => write!(f, "instruction limit exceeded"),
        }
    }
}

impl std::error::Error for RtlError {}

impl From<DeltaOverflow> for RtlError {
    fn from(d: DeltaOverflow) -> Self {
        RtlError::Delta(d)
    }
}

/// Resumable image of the RTL core's mutable state: the kernel's signal
/// values and scheduling state plus the shared data memory and the
/// retirement counter. The elaborated processes and the instruction
/// memory are construction-time constants and stay shared with the
/// core. This is what finally gives the RTL model a cheap
/// [`ExecutionEngine::reset`] — restoring the post-elaboration snapshot
/// instead of re-elaborating the whole model.
#[derive(Debug, Clone)]
pub struct RtlSnapshot {
    kernel: KernelState,
    mem: Memory,
    instructions: u64,
}

impl RtlSnapshot {
    /// Serializes the snapshot for portable park/resume.
    pub fn encode_into(&self, out: &mut Vec<u8>) {
        self.kernel.encode_into(out);
        self.mem.encode_into(out);
        ByteWriter::new(out).u64(self.instructions);
    }

    /// Decodes an [`RtlSnapshot::encode_into`] image.
    ///
    /// # Errors
    ///
    /// Returns a [`CodecError`] on truncated or corrupt input.
    pub fn decode(r: &mut ByteReader<'_>) -> Result<Self, CodecError> {
        Ok(RtlSnapshot {
            kernel: KernelState::decode(r)?,
            mem: Memory::decode(r)?,
            instructions: r.u64()?,
        })
    }
}

/// The RTL-style core bound to a program image.
pub struct RtlCore {
    kernel: Kernel,
    clk: SignalId,
    state: SignalId,
    regs: Vec<SignalId>,
    pc: SignalId,
    instructions: u64,
    mem: Arc<Mutex<Memory>>,
    /// Instruction memory handle (fetch closures share it); used to
    /// decide whether the pc signal points inside the program.
    imem: Arc<HashMap<u32, u16>>,
    /// Post-elaboration state, restored by [`ExecutionEngine::reset`].
    initial: RtlSnapshot,
}

impl fmt::Debug for RtlCore {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("RtlCore")
            .field("instructions", &self.instructions)
            .field("cycles", &self.kernel.time())
            .finish_non_exhaustive()
    }
}

impl RtlCore {
    /// Elaborates the model and loads `elf`.
    ///
    /// # Errors
    ///
    /// Returns [`RtlError::Fault`] if the image has no text (fetch would
    /// fault immediately anyway, but we check early).
    pub fn new(elf: &ElfFile) -> Result<Self, RtlError> {
        let mut data_mem = Memory::new();
        elf.load_into(&mut data_mem)
            .map_err(|_| RtlError::Fault { pc: elf.entry })?;
        let mem = Arc::new(Mutex::new(data_mem));

        // Instruction memory: halfwords keyed by address.
        let mut imem: HashMap<u32, u16> = HashMap::new();
        for s in &elf.sections {
            if s.kind == cabt_isa::elf::SectionKind::Text {
                for (i, ch) in s.data.chunks(2).enumerate() {
                    if ch.len() == 2 {
                        imem.insert(s.addr + 2 * i as u32, u16::from_le_bytes([ch[0], ch[1]]));
                    }
                }
            }
        }
        let imem = Arc::new(imem);

        let mut k = Kernel::new();
        let clk = k.signal(0);
        let state = k.signal(ST_FETCH);
        let pc = k.signal(elf.entry as u64);
        let if_lo = k.signal(0);
        let if_hi = k.signal(0);
        let if_pc = k.signal(0);
        let mem_op = k.signal(MEM_NONE);
        let mem_addr = k.signal(0);
        let mem_wdata = k.signal(0);
        let mem_kind = k.signal(0); // packed load/store width selector
        let wb0_en = k.signal(0);
        let wb0_reg = k.signal(0);
        let wb0_val = k.signal(0);
        let wb1_en = k.signal(0);
        let wb1_reg = k.signal(0);
        let wb1_val = k.signal(0);
        let next_pc = k.signal(0);

        let regs: Vec<SignalId> = (0..32).map(|_| k.signal(0)).collect();
        // Stack pointer (a10 = index 26) initialized as the golden model does.
        k.poke(regs[26], 0xd003_0000);

        // ---- FETCH ----
        let imem_f = Arc::clone(&imem);
        let fetch = k.process(move |ctx| {
            if ctx.get(clk) != 1 || ctx.get(state) != ST_FETCH {
                return;
            }
            let pcv = ctx.get(pc) as u32;
            match imem_f.get(&pcv) {
                Some(&lo) => {
                    let hi = if lo & 1 == 1 {
                        match imem_f.get(&(pcv + 2)) {
                            Some(&h) => h,
                            None => {
                                ctx.set(state, ST_FAULT);
                                return;
                            }
                        }
                    } else {
                        0
                    };
                    ctx.set(if_lo, lo as u64);
                    ctx.set(if_hi, hi as u64);
                    ctx.set(if_pc, pcv as u64);
                    ctx.set(state, ST_EXEC);
                }
                None => ctx.set(state, ST_FAULT),
            }
        });
        k.make_sensitive(fetch, clk);

        // ---- EXEC ----
        let regs_e = regs.clone();
        let exec = k.process(move |ctx| {
            if ctx.get(clk) != 1 || ctx.get(state) != ST_EXEC {
                return;
            }
            let lo = ctx.get(if_lo) as u16;
            let hi = ctx.get(if_hi) as u16;
            let pcv = ctx.get(if_pc) as u32;
            let (instr, size) = match decode(lo, hi) {
                Ok(x) => x,
                Err(_) => {
                    ctx.set(state, ST_FAULT);
                    return;
                }
            };
            let d = |ctx: &crate::kernel::ProcCtx<'_>, i: u8| ctx.get(regs_e[i as usize]) as u32;
            let a =
                |ctx: &crate::kernel::ProcCtx<'_>, i: u8| ctx.get(regs_e[16 + i as usize]) as u32;
            let seq = pcv.wrapping_add(size);

            // Default control outputs.
            ctx.set(wb0_en, 0);
            ctx.set(wb1_en, 0);
            ctx.set(mem_op, MEM_NONE);
            ctx.set(next_pc, seq as u64);
            let mut go_mem = false;
            let wb0 = |ctx: &mut crate::kernel::ProcCtx<'_>, reg: u64, val: u32| {
                ctx.set(wb0_en, 1);
                ctx.set(wb0_reg, reg);
                ctx.set(wb0_val, val as u64);
            };

            match instr {
                Instr::Nop16 | Instr::Nop => {}
                Instr::Debug16 => {
                    ctx.set(state, ST_HALT);
                    return;
                }
                Instr::Ret16 => ctx.set(next_pc, a(ctx, RA.0) as u64),
                Instr::Mov16 { d: r, imm7 } => wb0(ctx, r.0 as u64, imm7 as i32 as u32),
                Instr::MovRR16 { d: r, s } => {
                    let v = d(ctx, s.0);
                    wb0(ctx, r.0 as u64, v);
                }
                Instr::Add16 { d: r, s } => {
                    let v = d(ctx, r.0).wrapping_add(d(ctx, s.0));
                    wb0(ctx, r.0 as u64, v);
                }
                Instr::Sub16 { d: r, s } => {
                    let v = d(ctx, r.0).wrapping_sub(d(ctx, s.0));
                    wb0(ctx, r.0 as u64, v);
                }
                Instr::Mov { d: r, imm16 } => wb0(ctx, r.0 as u64, imm16 as i32 as u32),
                Instr::Movh { d: r, imm16 } => wb0(ctx, r.0 as u64, (imm16 as u32) << 16),
                Instr::MovhA { a: r, imm16 } => wb0(ctx, 16 + r.0 as u64, (imm16 as u32) << 16),
                Instr::Addi { d: r, s, imm16 } => {
                    let v = d(ctx, s.0).wrapping_add(imm16 as i32 as u32);
                    wb0(ctx, r.0 as u64, v);
                }
                Instr::Addih { d: r, s, imm16 } => {
                    let v = d(ctx, s.0).wrapping_add((imm16 as u32) << 16);
                    wb0(ctx, r.0 as u64, v);
                }
                Instr::MovRR { d: r, s } => {
                    let v = d(ctx, s.0);
                    wb0(ctx, r.0 as u64, v);
                }
                Instr::MovA { a: r, s } => {
                    let v = d(ctx, s.0);
                    wb0(ctx, 16 + r.0 as u64, v);
                }
                Instr::MovD { d: r, a: s } => {
                    let v = a(ctx, s.0);
                    wb0(ctx, r.0 as u64, v);
                }
                Instr::MovAA { a: r, s } => {
                    let v = a(ctx, s.0);
                    wb0(ctx, 16 + r.0 as u64, v);
                }
                Instr::Lea { a: r, base, off16 } => {
                    let v = a(ctx, base.0).wrapping_add(off16 as i32 as u32);
                    wb0(ctx, 16 + r.0 as u64, v);
                }
                Instr::Bin { op, d: r, s1, s2 } => {
                    let v = op.apply(d(ctx, s1.0), d(ctx, s2.0));
                    wb0(ctx, r.0 as u64, v);
                }
                Instr::BinI { op, d: r, s1, imm9 } => {
                    let v = op.apply(d(ctx, s1.0), imm9 as i32 as u32);
                    wb0(ctx, r.0 as u64, v);
                }
                Instr::Madd { d: r, acc, s1, s2 } => {
                    let v = d(ctx, acc.0).wrapping_add(d(ctx, s1.0).wrapping_mul(d(ctx, s2.0)));
                    wb0(ctx, r.0 as u64, v);
                }
                Instr::Msub { d: r, acc, s1, s2 } => {
                    let v = d(ctx, acc.0).wrapping_sub(d(ctx, s1.0).wrapping_mul(d(ctx, s2.0)));
                    wb0(ctx, r.0 as u64, v);
                }
                Instr::Ld {
                    kind,
                    d: r,
                    base,
                    off10,
                    postinc,
                } => {
                    let b = a(ctx, base.0);
                    let addr = if postinc {
                        b
                    } else {
                        b.wrapping_add(off10 as i32 as u32)
                    };
                    ctx.set(mem_op, MEM_LD);
                    ctx.set(mem_addr, addr as u64);
                    ctx.set(mem_kind, ld_kind_code(kind));
                    ctx.set(wb0_reg, r.0 as u64);
                    if postinc {
                        ctx.set(wb1_en, 1);
                        ctx.set(wb1_reg, 16 + base.0 as u64);
                        ctx.set(wb1_val, b.wrapping_add(off10 as i32 as u32) as u64);
                    }
                    go_mem = true;
                }
                Instr::LdA {
                    a: r,
                    base,
                    off10,
                    postinc,
                } => {
                    let b = a(ctx, base.0);
                    let addr = if postinc {
                        b
                    } else {
                        b.wrapping_add(off10 as i32 as u32)
                    };
                    ctx.set(mem_op, MEM_LD);
                    ctx.set(mem_addr, addr as u64);
                    ctx.set(mem_kind, ld_kind_code(LdKind::W));
                    ctx.set(wb0_reg, 16 + r.0 as u64);
                    if postinc {
                        ctx.set(wb1_en, 1);
                        ctx.set(wb1_reg, 16 + base.0 as u64);
                        ctx.set(wb1_val, b.wrapping_add(off10 as i32 as u32) as u64);
                    }
                    go_mem = true;
                }
                Instr::LdW16 { d: r, a: base } => {
                    ctx.set(mem_op, MEM_LD);
                    ctx.set(mem_addr, a(ctx, base.0) as u64);
                    ctx.set(mem_kind, ld_kind_code(LdKind::W));
                    ctx.set(wb0_reg, r.0 as u64);
                    go_mem = true;
                }
                Instr::St {
                    kind,
                    s,
                    base,
                    off10,
                    postinc,
                } => {
                    let b = a(ctx, base.0);
                    let addr = if postinc {
                        b
                    } else {
                        b.wrapping_add(off10 as i32 as u32)
                    };
                    ctx.set(mem_op, MEM_ST);
                    ctx.set(mem_addr, addr as u64);
                    ctx.set(mem_kind, st_kind_code(kind));
                    ctx.set(mem_wdata, d(ctx, s.0) as u64);
                    if postinc {
                        ctx.set(wb1_en, 1);
                        ctx.set(wb1_reg, 16 + base.0 as u64);
                        ctx.set(wb1_val, b.wrapping_add(off10 as i32 as u32) as u64);
                    }
                    go_mem = true;
                }
                Instr::StA {
                    s,
                    base,
                    off10,
                    postinc,
                } => {
                    let b = a(ctx, base.0);
                    let addr = if postinc {
                        b
                    } else {
                        b.wrapping_add(off10 as i32 as u32)
                    };
                    ctx.set(mem_op, MEM_ST);
                    ctx.set(mem_addr, addr as u64);
                    ctx.set(mem_kind, st_kind_code(StKind::W));
                    ctx.set(mem_wdata, a(ctx, s.0) as u64);
                    if postinc {
                        ctx.set(wb1_en, 1);
                        ctx.set(wb1_reg, 16 + base.0 as u64);
                        ctx.set(wb1_val, b.wrapping_add(off10 as i32 as u32) as u64);
                    }
                    go_mem = true;
                }
                Instr::StW16 { a: base, s } => {
                    ctx.set(mem_op, MEM_ST);
                    ctx.set(mem_addr, a(ctx, base.0) as u64);
                    ctx.set(mem_kind, st_kind_code(StKind::W));
                    ctx.set(mem_wdata, d(ctx, s.0) as u64);
                    go_mem = true;
                }
                Instr::J { .. } => ctx.set(next_pc, instr.target(pcv).expect("direct") as u64),
                Instr::Jl { .. } => {
                    wb0(ctx, 16 + RA.0 as u64, seq);
                    ctx.set(next_pc, instr.target(pcv).expect("direct") as u64);
                }
                Instr::Ji { a: r } => ctx.set(next_pc, a(ctx, r.0) as u64),
                Instr::Jli { a: r } => {
                    let t = a(ctx, r.0);
                    wb0(ctx, 16 + RA.0 as u64, seq);
                    ctx.set(next_pc, t as u64);
                }
                Instr::Jcond { cond, s1, s2, .. } => {
                    if cond.eval(d(ctx, s1.0), d(ctx, s2.0)) {
                        ctx.set(next_pc, instr.target(pcv).expect("direct") as u64);
                    }
                }
                Instr::JcondZ { cond, s1, .. } => {
                    if cond.eval(d(ctx, s1.0), 0) {
                        ctx.set(next_pc, instr.target(pcv).expect("direct") as u64);
                    }
                }
                Instr::Loop { a: r, .. } => {
                    let v = a(ctx, r.0).wrapping_sub(1);
                    wb0(ctx, 16 + r.0 as u64, v);
                    if v != 0 {
                        ctx.set(next_pc, instr.target(pcv).expect("direct") as u64);
                    }
                }
            }

            ctx.set(state, if go_mem { ST_MEM } else { ST_WB });
        });
        k.make_sensitive(exec, clk);

        // ---- MEM ----
        let mem_m = Arc::clone(&mem);
        let memstage = k.process(move |ctx| {
            if ctx.get(clk) != 1 || ctx.get(state) != ST_MEM {
                return;
            }
            let addr = ctx.get(mem_addr) as u32;
            let kind = ctx.get(mem_kind);
            let mut m = mem_m.lock().expect("rtl memory lock");
            match ctx.get(mem_op) {
                MEM_LD => {
                    let v = match kind {
                        0 => m.read_u8(addr).map(|b| b as i8 as i32 as u32),
                        1 => m.read_u8(addr).map(|b| b as u32),
                        2 => m.read_u16(addr).map(|h| h as i16 as i32 as u32),
                        3 => m.read_u16(addr).map(|h| h as u32),
                        _ => m.read_u32(addr),
                    };
                    match v {
                        Ok(v) => {
                            ctx.set(wb0_en, 1);
                            ctx.set(wb0_val, v as u64);
                        }
                        Err(_) => {
                            ctx.set(state, ST_FAULT);
                            return;
                        }
                    }
                }
                MEM_ST => {
                    let v = ctx.get(mem_wdata) as u32;
                    let r = match kind {
                        10 => m.write_u8(addr, v as u8),
                        11 => m.write_u16(addr, v as u16),
                        _ => m.write_u32(addr, v),
                    };
                    if r.is_err() {
                        ctx.set(state, ST_FAULT);
                        return;
                    }
                }
                _ => {}
            }
            ctx.set(state, ST_WB);
        });
        k.make_sensitive(memstage, clk);

        // ---- WB ----
        let regs_w = regs.clone();
        let wb = k.process(move |ctx| {
            if ctx.get(clk) != 1 || ctx.get(state) != ST_WB {
                return;
            }
            if ctx.get(wb0_en) == 1 {
                let r = ctx.get(wb0_reg) as usize;
                let v = ctx.get(wb0_val);
                ctx.set(regs_w[r], v);
            }
            if ctx.get(wb1_en) == 1 {
                let r = ctx.get(wb1_reg) as usize;
                let v = ctx.get(wb1_val);
                ctx.set(regs_w[r], v);
            }
            let npc = ctx.get(next_pc);
            ctx.set(pc, npc);
            ctx.set(state, ST_FETCH);
        });
        k.make_sensitive(wb, clk);

        let initial = RtlSnapshot {
            kernel: k.save_state(),
            mem: mem.lock().expect("rtl memory lock").clone(),
            instructions: 0,
        };
        Ok(RtlCore {
            kernel: k,
            clk,
            state,
            regs,
            pc,
            instructions: 0,
            mem,
            imem,
            initial,
        })
    }

    /// Executes one instruction (several clock ticks).
    ///
    /// # Errors
    ///
    /// Propagates delta overflows and core faults.
    pub fn step_instruction(&mut self) -> Result<(), RtlError> {
        if self.is_halted() {
            return Ok(());
        }
        // Tick until the state machine returns to FETCH (or halts).
        for _ in 0..8 {
            self.kernel.tick(self.clk)?;
            match self.kernel.value(self.state) {
                ST_FAULT => {
                    return Err(RtlError::Fault {
                        pc: self.kernel.value(self.pc) as u32,
                    })
                }
                ST_HALT => {
                    self.instructions += 1;
                    return Ok(());
                }
                ST_FETCH => {
                    self.instructions += 1;
                    return Ok(());
                }
                _ => {}
            }
        }
        Err(RtlError::Fault {
            pc: self.kernel.value(self.pc) as u32,
        })
    }

    /// Runs to the halt instruction.
    ///
    /// # Errors
    ///
    /// Returns [`RtlError::InstructionLimit`] after `max_instructions`.
    pub fn run(&mut self, max_instructions: u64) -> Result<(), RtlError> {
        while !self.is_halted() {
            if self.instructions >= max_instructions {
                return Err(RtlError::InstructionLimit);
            }
            self.step_instruction()?;
        }
        Ok(())
    }

    /// True once `debug` executed.
    pub fn is_halted(&self) -> bool {
        self.kernel.value(self.state) == ST_HALT
    }

    /// Reads data register `i`.
    pub fn d(&self, i: u8) -> u32 {
        self.kernel.value(self.regs[i as usize]) as u32
    }

    /// Reads address register `i`.
    pub fn a(&self, i: u8) -> u32 {
        self.kernel.value(self.regs[16 + i as usize]) as u32
    }

    /// Instructions retired.
    pub fn instructions(&self) -> u64 {
        self.instructions
    }

    /// Clock cycles simulated.
    pub fn cycles(&self) -> u64 {
        self.kernel.time()
    }

    /// Delta cycles executed (simulation work metric).
    pub fn delta_count(&self) -> u64 {
        self.kernel.delta_count()
    }

    /// Shared handle to the data memory (testbench access).
    pub fn memory(&self) -> Arc<Mutex<Memory>> {
        Arc::clone(&self.mem)
    }
}

impl ExecutionEngine for RtlCore {
    type Error = RtlError;
    type Snapshot = RtlSnapshot;

    fn snapshot(&self) -> RtlSnapshot {
        RtlSnapshot {
            kernel: self.kernel.save_state(),
            mem: self.mem.lock().expect("rtl memory lock").clone(),
            instructions: self.instructions,
        }
    }

    fn restore(&mut self, snapshot: &RtlSnapshot) {
        self.kernel.restore_state(&snapshot.kernel);
        *self.mem.lock().expect("rtl memory lock") = snapshot.mem.clone();
        self.instructions = snapshot.instructions;
    }

    /// Snapshot-based reset: restores the post-elaboration state
    /// captured at construction (signals, memory image, counters) —
    /// the model is *not* re-elaborated.
    fn reset(&mut self) {
        // Disjoint field borrows: restore straight from `self.initial`
        // without cloning the whole snapshot first.
        self.kernel.restore_state(&self.initial.kernel);
        *self.mem.lock().expect("rtl memory lock") = self.initial.mem.clone();
        self.instructions = self.initial.instructions;
    }

    fn step_unit(&mut self) -> Result<(), RtlError> {
        self.step_instruction()
    }

    /// The RTL core's native cycle unit is the simulated clock period;
    /// one instruction costs several (see
    /// [`RtlCore::step_instruction`]).
    fn cycle(&self) -> u64 {
        self.kernel.time()
    }

    fn is_halted(&self) -> bool {
        RtlCore::is_halted(self)
    }

    fn pc(&self) -> Option<u32> {
        let pcv = self.kernel.value(self.pc) as u32;
        self.imem.contains_key(&pcv).then_some(pcv)
    }

    /// Flat register space: `0..16` = `D0..D15`, `16..32` = `A0..A15`
    /// — the same layout as the golden model.
    fn reg_count(&self) -> usize {
        32
    }

    fn read_reg_index(&self, index: usize) -> u32 {
        self.kernel.value(self.regs[index]) as u32
    }

    fn write_reg_index(&mut self, index: usize, value: u32) {
        self.kernel.poke(self.regs[index], value as u64);
    }

    fn read_mem(&mut self, addr: u32, len: usize) -> Result<Vec<u8>, RtlError> {
        self.mem
            .lock()
            .expect("rtl memory lock")
            .read_block(addr, len)
            .map_err(RtlError::Mem)
    }

    fn engine_stats(&self) -> EngineStats {
        EngineStats {
            cycles: self.kernel.time(),
            retired: self.instructions,
            stall_cycles: 0,
        }
    }
}

fn ld_kind_code(kind: LdKind) -> u64 {
    match kind {
        LdKind::B => 0,
        LdKind::Bu => 1,
        LdKind::H => 2,
        LdKind::Hu => 3,
        LdKind::W => 4,
    }
}

fn st_kind_code(kind: StKind) -> u64 {
    match kind {
        StKind::B => 10,
        StKind::H => 11,
        StKind::W => 12,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use cabt_tricore::asm::assemble;
    use cabt_tricore::sim::Simulator;

    fn run_rtl(src: &str) -> RtlCore {
        let elf = assemble(src).unwrap();
        let mut core = RtlCore::new(&elf).unwrap();
        core.run(1_000_000).unwrap();
        core
    }

    #[test]
    fn computes_like_the_golden_model() {
        let src = "
            .text
        _start:
            mov %d0, 10
            mov %d2, 0
        top:
            add %d2, %d0
            addi %d0, %d0, -1
            jnz %d0, top
            debug
        ";
        let core = run_rtl(src);
        assert_eq!(core.d(2), 55);

        let elf = assemble(src).unwrap();
        let mut gold = Simulator::new(&elf).unwrap();
        gold.run(10_000).unwrap();
        for i in 0..16 {
            assert_eq!(core.d(i), gold.cpu.d(i), "d{i}");
        }
    }

    #[test]
    fn memory_and_calls_work() {
        let src = "
            .text
        _start:
            movh.a %a2, hi:buf
            lea %a2, [%a2]lo:buf
            mov %d1, 33
            st.w [%a2]0, %d1
            call bump
            ld.w %d2, [%a2]0
            debug
        bump:
            ld.w %d3, [%a2]0
            addi %d3, %d3, 9
            st.w [%a2]0, %d3
            ret
            .data
        buf: .word 0
        ";
        let core = run_rtl(src);
        assert_eq!(core.d(2), 42);
    }

    #[test]
    fn postincrement_and_loop() {
        let src = "
            .text
        _start:
            movh.a %a2, hi:arr
            lea %a2, [%a2]lo:arr
            mov %d0, 4
            mov.a %a3, %d0
            mov %d2, 0
        s:
            ld.w %d1, [%a2+]4
            add %d2, %d1
            loop %a3, s
            debug
            .data
        arr: .word 1, 2, 3, 4
        ";
        let core = run_rtl(src);
        assert_eq!(core.d(2), 10);
    }

    #[test]
    fn multicycle_timing_counts_stages() {
        // ALU instructions take 3 ticks (F/E/WB), memory 4 (F/E/M/WB).
        let core = run_rtl(".text\n_start: mov %d1, 1\nmov %d2, 2\ndebug\n");
        assert_eq!(core.instructions(), 3);
        // 2 ALU × 3 + debug (halts in EXEC after fetch: 2 ticks).
        assert_eq!(core.cycles(), 8);
        assert!(core.delta_count() > core.cycles(), "deltas dominate work");
    }

    #[test]
    fn fault_on_runaway_pc() {
        let elf = assemble(".text\n_start: ji %a0\n").unwrap();
        let mut core = RtlCore::new(&elf).unwrap();
        // a0 = 0 → fetch from 0 faults.
        let err = core.run(10).unwrap_err();
        assert!(matches!(err, RtlError::Fault { .. }));
    }

    #[test]
    fn workload_checksums_match() {
        // A couple of real workloads end to end.
        for w in [cabt_workloads::gcd(4, 9), cabt_workloads::dpcm(40, 9)] {
            let elf = w.elf().unwrap();
            let mut core = RtlCore::new(&elf).unwrap();
            core.run(5_000_000).unwrap();
            assert_eq!(core.d(2), w.expected_d2, "{}", w.name);
        }
    }
}

//! RT-level simulation substrate: an event-driven kernel with signals,
//! processes and delta cycles, plus a stage-level model of the source
//! core.
//!
//! Table 2 of the paper compares the translation approach against "an RT
//! level simulation of the TriCore processor core on a workstation" —
//! the slow baseline that motivates the whole system. We reproduce that
//! baseline with the same simulation *mechanism* an HDL simulator uses:
//!
//! * [`kernel`] — signals with current/next values, processes with
//!   sensitivity lists, delta-cycle convergence, and an explicit clock.
//! * [`core`] — the source processor modelled as communicating
//!   processes over signals (fetch and execute stages, pipeline
//!   registers, architectural register file as 32 signals), executing
//!   real ELF images instruction-for-instruction compatibly with the
//!   golden model.
//!
//! The model's *wall-clock* cost per instruction — dozens of signal
//! updates and process wake-ups — is what regenerates the orders-of-
//! magnitude gap in Table 2.

pub mod core;
pub mod kernel;

pub use crate::core::{RtlCore, RtlError, RtlSnapshot};
pub use kernel::{Kernel, KernelState, ProcId, SignalId};

//! Fleet-scale session service over the CABT vehicles.
//!
//! The paper's platform is a *single-session* instrument: one workload,
//! one vehicle, one run. This crate turns it into a service. Three
//! pieces:
//!
//! * **[`FleetPool`]** — a fixed work-stealing thread pool. Epoch
//!   rounds are work items, so M concurrent sessions × N shards
//!   multiplex onto a bounded worker population instead of the
//!   thread-per-shard-per-round discipline of
//!   [`cabt_exec::run_epochs_parallel`].
//! * **The pooled epoch scheduler** ([`run_fleet`]) — event-driven:
//!   the pool job that completes the last shard of a session's epoch
//!   round performs the barrier exchange and schedules the next round.
//!   Decisions are made by the *same* [`cabt_exec::plan_epoch_round`] /
//!   [`cabt_exec::run_shard_to_deadline`] pair the in-process drivers
//!   use, so the simulation is bit-identical to a plain
//!   [`Session`](cabt_sim::Session) run — pinned per epoch by a rolling
//!   [`cabt_exec::fingerprint_engine`] digest chain.
//! * **Portable sessions** — [`cabt_sim::Session::park`] serializes a
//!   mid-run session to versioned bytes; [`cabt_sim::Session::resume`]
//!   rebuilds it on any worker, or in another process entirely. The
//!   `fleet-server` binary front-ends both over a line protocol.
//!
//! ```
//! use cabt_exec::Limit;
//! use cabt_fleet::{run_fleet, FleetPool, FleetRequest};
//!
//! let pool = FleetPool::new(2);
//! let requests: Vec<FleetRequest> = ["gcd", "sieve"]
//!     .iter()
//!     .map(|w| FleetRequest::named(*w).budget(Limit::Cycles(10_000_000)))
//!     .collect();
//! for result in run_fleet(&pool, &requests) {
//!     let r = result?;
//!     assert!(r.checksum_ok());
//! }
//! # Ok::<(), cabt_sim::SessionError>(())
//! ```

pub use cabt_exec::pool::{self, FleetPool, Latch};

use cabt_exec::{
    fingerprint_engine, plan_epoch_round, run_shard_to_deadline, EngineStats, EpochPlan,
    Fingerprint, Limit, StopCause,
};
use cabt_platform::ShardArbiter;
use cabt_sim::{Backend, Session, SessionError, SimBuilder};
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::{Arc, Mutex, MutexGuard, PoisonError};

/// Locks a fleet-internal mutex, recovering from poison. A worker that
/// panicked mid-round poisons the mutexes it held; the values they
/// guard (shard sessions, counters, logs) stay structurally valid, and
/// the failed unit is reported as a typed [`SessionError::Service`] —
/// one lost run must not abort the pool or the whole batch.
fn lock_ok<T: ?Sized>(m: &Mutex<T>) -> MutexGuard<'_, T> {
    m.lock().unwrap_or_else(PoisonError::into_inner)
}

/// Scheduling epoch (target cycles) used when a request does not name
/// one — the same default granularity sharded sessions fall back to.
pub const FLEET_EPOCH_CYCLES: u64 = 4096;

/// One workload the fleet should run.
#[derive(Debug, Clone)]
pub struct FleetRequest {
    /// Named `cabt-workloads` entry (`"gcd"`, `"sieve"`, …).
    pub workload: String,
    /// The vehicle to run it on. [`Backend::Sharded`] requests are
    /// decomposed into per-shard work items around a shared device
    /// fabric; single-core backends become one work item per epoch.
    pub backend: Backend,
    /// Run budget (frontier cycles or aggregate retirements, exactly as
    /// [`cabt_sim::Session::run`] interprets them).
    pub budget: Limit,
    /// Scheduling epoch in target cycles ([`FLEET_EPOCH_CYCLES`] when
    /// `None`).
    pub epoch: Option<u64>,
}

impl FleetRequest {
    /// A request for the named workload on the default backend with an
    /// effectively unbounded budget.
    pub fn named(workload: impl Into<String>) -> FleetRequest {
        FleetRequest {
            workload: workload.into(),
            backend: Backend::default(),
            budget: Limit::Cycles(u64::MAX),
            epoch: None,
        }
    }

    /// Selects the backend.
    #[must_use]
    pub fn backend(mut self, backend: Backend) -> Self {
        self.backend = backend;
        self
    }

    /// Sets the run budget.
    #[must_use]
    pub fn budget(mut self, budget: Limit) -> Self {
        self.budget = budget;
        self
    }

    /// Overrides the scheduling epoch (target cycles, clamped to ≥ 1).
    #[must_use]
    pub fn epoch(mut self, target_cycles: u64) -> Self {
        self.epoch = Some(target_cycles.max(1));
        self
    }
}

/// What one fleet session produced.
#[derive(Debug, Clone)]
pub struct FleetResult {
    /// The request's workload name.
    pub workload: String,
    /// The request's backend.
    pub backend: Backend,
    /// Why the run stopped.
    pub stop: StopCause,
    /// Aggregate counters (`retired`/`stall_cycles` summed across
    /// shards, `cycles` the longest shard clock).
    pub stats: EngineStats,
    /// Epoch rounds the scheduler drove.
    pub epochs: u64,
    /// Final state digest: every shard's
    /// [`cabt_exec::fingerprint_engine`] mixed in shard order.
    pub digest: u64,
    /// Rolling digest chain over every epoch boundary — two schedulers
    /// ran the *same simulation* iff their chains match, not just their
    /// final states.
    pub epoch_chain: u64,
    /// Checksum register `%d2` of shard 0 at stop.
    pub d2: u32,
    /// The workload's predicted checksum.
    pub expected_d2: u32,
    /// Merged UART transmit log (timestamped bytes), where the vehicle
    /// has a device fabric.
    pub uart: Vec<(u64, u8)>,
}

impl FleetResult {
    /// True when the session halted with the workload's predicted
    /// checksum in `%d2`.
    pub fn checksum_ok(&self) -> bool {
        self.stop == StopCause::Halted && self.d2 == self.expected_d2
    }
}

/// A fleet session decomposed for the pool: N shard slots (N = 1 for
/// single-core backends) plus the barrier arbiter of sharded requests.
struct UnitState {
    workload: String,
    backend: Backend,
    expected_d2: u32,
    budget: Limit,
    epoch: u64,
    shards: Vec<Mutex<Session>>,
    /// `Some` for sharded requests: the canonical device fabric merged
    /// at every epoch barrier.
    arbiter: Mutex<Option<ShardArbiter>>,
    /// Live shards still to finish the current round.
    remaining: AtomicUsize,
    /// First fault of the current round (lowest-indexed shard wins at
    /// collection time; rounds run to the barrier like the parallel
    /// driver).
    fault: Mutex<Option<SessionError>>,
    /// Rounds completed plus the rolling per-epoch digest chain.
    progress: Mutex<(u64, Fingerprint)>,
    /// The final outcome, set exactly once.
    outcome: Mutex<Option<Result<StopCause, SessionError>>>,
}

impl UnitState {
    fn build(req: &FleetRequest) -> Result<UnitState, SessionError> {
        let expected_d2 = cabt_workloads::by_name(&req.workload)
            .ok_or_else(|| SessionError::UnknownWorkload(req.workload.clone()))?
            .expected_d2;
        let (shards, arbiter) = match req.backend {
            // Decompose a sharded backend into fleet-owned shard
            // sessions around a shared device fabric — the same
            // construction `Backend::Sharded` performs internally
            // (private bus clone per shard, core id in `%d15`), built
            // here from the public surface so every shard is an
            // independently schedulable work item.
            Backend::Sharded { cores, backend, .. } => {
                if cores == 0 {
                    return Err(SessionError::ShardConfig(
                        "a sharded fleet request needs at least one core".into(),
                    ));
                }
                let buses: Vec<cabt_platform::SharedSocBus> = (0..cores)
                    .map(|id| {
                        cabt_platform::SharedSocBus::new(cabt_platform::shard_soc_bus(
                            u32::from(id),
                            u32::from(cores),
                        ))
                    })
                    .collect();
                let arbiter = ShardArbiter::new(
                    cabt_platform::mirror_soc_bus(u32::from(cores)),
                    buses.clone(),
                );
                let mut shards = Vec::with_capacity(cores as usize);
                for id in 0..cores {
                    let mut builder =
                        SimBuilder::named(&req.workload).backend(Backend::from(backend));
                    // RTL shards have no I/O window; the builder ignores
                    // a bus for them, matching the sharded vehicle.
                    if !matches!(Backend::from(backend), Backend::Rtl) {
                        builder = builder.soc_bus(buses[id as usize].clone());
                    }
                    let mut shard = builder.build()?;
                    shard.write_d(15, u32::from(id));
                    shards.push(Mutex::new(shard));
                }
                (shards, Some(arbiter))
            }
            backend => {
                let session = SimBuilder::named(&req.workload).backend(backend).build()?;
                (vec![Mutex::new(session)], None)
            }
        };
        Ok(UnitState {
            workload: req.workload.clone(),
            backend: req.backend,
            expected_d2,
            budget: req.budget,
            epoch: req.epoch.unwrap_or(FLEET_EPOCH_CYCLES).max(1),
            shards,
            arbiter: Mutex::new(arbiter),
            remaining: AtomicUsize::new(0),
            fault: Mutex::new(None),
            progress: Mutex::new((0, Fingerprint::new())),
            outcome: Mutex::new(None),
        })
    }

    /// Frontier clock and halt state, as [`cabt_exec::shard_frontier`]
    /// defines them, over the locked shard slots.
    fn frontier(&self) -> (u64, bool) {
        let mut frontier = u64::MAX;
        let mut all_halted = true;
        for slot in &self.shards {
            let shard = lock_ok(slot);
            if !cabt_exec::ExecutionEngine::is_halted(&*shard) {
                all_halted = false;
                frontier = frontier.min(cabt_exec::ExecutionEngine::cycle(&*shard));
            }
        }
        if all_halted {
            frontier = self
                .shards
                .iter()
                .map(|s| cabt_exec::ExecutionEngine::cycle(&*lock_ok(s)))
                .max()
                .unwrap_or(0);
        }
        (frontier, all_halted)
    }

    fn aggregate_retired(&self) -> u64 {
        self.shards
            .iter()
            .map(|s| cabt_exec::ExecutionEngine::engine_stats(&*lock_ok(s)).retired)
            .sum()
    }

    fn aggregate_stats(&self) -> EngineStats {
        let mut agg = EngineStats::default();
        for slot in &self.shards {
            let s = cabt_exec::ExecutionEngine::engine_stats(&*lock_ok(slot));
            agg.retired += s.retired;
            agg.stall_cycles += s.stall_cycles;
            agg.cycles = agg.cycles.max(s.cycles);
        }
        agg
    }

    fn commit_all(&self) {
        for slot in &self.shards {
            cabt_exec::ExecutionEngine::commit_arch_state(&mut *lock_ok(slot));
        }
    }

    /// Barrier work at the end of a round: exchange device state (when
    /// the unit has a fabric) and extend the per-epoch digest chain.
    fn complete_round(&self) {
        if let Some(arbiter) = lock_ok(&self.arbiter).as_mut() {
            arbiter.exchange();
        }
        let mut progress = lock_ok(&self.progress);
        progress.0 += 1;
        for slot in &self.shards {
            let digest = fingerprint_engine(&*lock_ok(slot));
            progress.1.mix_u64(digest);
        }
    }

    /// Records the outcome and releases the caller's handle *before*
    /// counting down, so the batch driver's `Arc::into_inner` cannot
    /// race the completing worker.
    fn finish(self: Arc<Self>, outcome: Result<StopCause, SessionError>, latch: &Latch) {
        *lock_ok(&self.outcome) = Some(outcome);
        drop(self);
        latch.count_down();
    }

    /// Collects the finished unit into a [`FleetResult`]. Works on a
    /// shared handle — a worker that has decremented the round counter
    /// may still hold its `Arc` briefly after the latch fires, so the
    /// batch driver cannot assume unique ownership.
    fn take_result(&self) -> Result<FleetResult, SessionError> {
        let stats = self.aggregate_stats();
        let stop = lock_ok(&self.outcome).take().ok_or_else(|| {
            SessionError::Service(
                "fleet unit finished without an outcome (worker died mid-round)".into(),
            )
        })??;
        let mut digest = Fingerprint::new();
        for slot in &self.shards {
            digest.mix_u64(fingerprint_engine(&*lock_ok(slot)));
        }
        let uart = match lock_ok(&self.arbiter).as_ref() {
            Some(arbiter) => arbiter.uart_log(),
            None => {
                let shard = lock_ok(&self.shards[0]);
                shard
                    .soc_bus_handle()
                    .map_or_else(Vec::new, |b| b.uart_log())
            }
        };
        let d2 = lock_ok(&self.shards[0]).read_d(2);
        let (epochs, chain) = *lock_ok(&self.progress);
        Ok(FleetResult {
            workload: self.workload.clone(),
            backend: self.backend,
            stop,
            stats,
            epochs,
            digest: digest.digest(),
            epoch_chain: chain.digest(),
            d2,
            expected_d2: self.expected_d2,
            uart,
        })
    }
}

/// What the next round of one unit should do — the fleet-side
/// reflection of [`cabt_exec::EpochPlan`], extended with the
/// retirement-budget arithmetic of sharded sessions.
enum RoundPlan {
    Done(StopCause),
    Round {
        deadline: u64,
        commit_boundary_halts: bool,
        live: Vec<usize>,
    },
}

fn plan_round(unit: &UnitState) -> RoundPlan {
    let (frontier, all_halted) = unit.frontier();
    match unit.budget {
        Limit::Cycles(max_cycles) => {
            match plan_epoch_round(frontier, all_halted, max_cycles, unit.epoch) {
                EpochPlan::LimitReached => RoundPlan::Done(StopCause::LimitReached),
                EpochPlan::Halted => {
                    unit.commit_all();
                    RoundPlan::Done(StopCause::Halted)
                }
                EpochPlan::Round { deadline } => RoundPlan::Round {
                    deadline,
                    commit_boundary_halts: true,
                    live: live_below(unit, deadline),
                },
            }
        }
        // Aggregate retirement budget: the same round arithmetic as the
        // sharded session driver — room shrinks as the budget drains, a
        // shard retires at most one unit per cycle, and boundary halts
        // commit only when the whole set has halted.
        Limit::Retirements(budget) => {
            if unit.aggregate_retired() >= budget {
                return RoundPlan::Done(StopCause::LimitReached);
            }
            if all_halted {
                unit.commit_all();
                return RoundPlan::Done(StopCause::Halted);
            }
            let room = ((budget - unit.aggregate_retired()) / unit.shards.len() as u64)
                .clamp(1, unit.epoch);
            let deadline = frontier.saturating_add(room);
            RoundPlan::Round {
                deadline,
                commit_boundary_halts: false,
                live: live_below(unit, deadline),
            }
        }
    }
}

fn live_below(unit: &UnitState, deadline: u64) -> Vec<usize> {
    unit.shards
        .iter()
        .enumerate()
        .filter(|(_, slot)| {
            let shard = lock_ok(slot);
            !cabt_exec::ExecutionEngine::is_halted(&*shard)
                && cabt_exec::ExecutionEngine::cycle(&*shard) < deadline
        })
        .map(|(i, _)| i)
        .collect()
}

/// Plans and schedules the unit's next round. Called once per unit from
/// [`run_fleet`], then again from whichever pool job completes the last
/// shard of each round — event-driven, no per-session coordinator
/// thread blocks anywhere.
fn schedule_round(unit: Arc<UnitState>, core: Arc<pool::PoolCore>, latch: Arc<Latch>) {
    let fault = lock_ok(&unit.fault).take();
    if let Some(fault) = fault {
        unit.finish(Err(fault), &latch);
        return;
    }
    match plan_round(&unit) {
        RoundPlan::Done(stop) => unit.finish(Ok(stop), &latch),
        RoundPlan::Round {
            deadline,
            commit_boundary_halts,
            live,
        } => {
            unit.remaining.store(live.len(), Ordering::Release);
            for i in live {
                let (unit, core2, latch) =
                    (Arc::clone(&unit), Arc::clone(&core), Arc::clone(&latch));
                core.push(Box::new(move || {
                    let result = {
                        let mut shard = lock_ok(&unit.shards[i]);
                        run_shard_to_deadline(&mut *shard, deadline, commit_boundary_halts)
                    };
                    if let Err(e) = result {
                        let mut fault = lock_ok(&unit.fault);
                        if fault.is_none() {
                            *fault = Some(e);
                        }
                    }
                    if unit.remaining.fetch_sub(1, Ordering::AcqRel) == 1 {
                        unit.complete_round();
                        schedule_round(unit, Arc::clone(&core2), latch);
                    }
                }));
            }
        }
    }
}

/// Runs every request to completion on the pool and returns the results
/// in request order. Sessions run *concurrently* — M sessions × N
/// shards multiplex as epoch-sized work items over the pool's fixed
/// worker population — but each session's simulation is bit-identical
/// to a dedicated [`cabt_sim::Session::run`] with the same budget,
/// whatever the worker count (the per-epoch digest chain in
/// [`FleetResult::epoch_chain`] is the receipt).
///
/// Build failures (unknown workload, invalid configuration) are
/// reported per request; they do not abort the batch.
pub fn run_fleet(
    pool: &FleetPool,
    requests: &[FleetRequest],
) -> Vec<Result<FleetResult, SessionError>> {
    let mut units: Vec<Result<Arc<UnitState>, SessionError>> = Vec::with_capacity(requests.len());
    for req in requests {
        units.push(UnitState::build(req).map(Arc::new));
    }
    let latch = Arc::new(Latch::new(units.iter().filter(|u| u.is_ok()).count()));
    for unit in units.iter().flatten() {
        schedule_round(Arc::clone(unit), pool.core(), Arc::clone(&latch));
    }
    latch.wait();
    units.into_iter().map(|unit| unit?.take_result()).collect()
}

/// Convenience single-session entry: one request, run to completion on
/// the pool.
///
/// # Errors
///
/// Build and engine faults, as [`run_fleet`] reports them.
pub fn run_one(pool: &FleetPool, request: FleetRequest) -> Result<FleetResult, SessionError> {
    run_fleet(pool, std::slice::from_ref(&request))
        .pop()
        .unwrap_or_else(|| {
            Err(SessionError::Service(
                "fleet batch returned no result for the request".into(),
            ))
        })
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fleet_matches_dedicated_session_on_single_core_backends() {
        let pool = FleetPool::new(2);
        for backend in [Backend::golden(), Backend::golden_compiled()] {
            let req = FleetRequest::named("gcd")
                .backend(backend)
                .budget(Limit::Cycles(50_000_000));
            let fleet = run_one(&pool, req).unwrap();
            let mut oracle = SimBuilder::named("gcd").backend(backend).build().unwrap();
            oracle.run(Limit::Cycles(50_000_000)).unwrap();
            assert_eq!(fleet.stop, StopCause::Halted, "{backend}");
            assert!(fleet.checksum_ok(), "{backend}");
            let mut expected = Fingerprint::new();
            expected.mix_u64(fingerprint_engine(&oracle));
            assert_eq!(
                fleet.digest,
                expected.digest(),
                "{backend}: fleet diverged from the dedicated session"
            );
        }
    }

    #[test]
    fn fleet_shard_groups_match_the_sharded_session_oracle() {
        let pool = FleetPool::new(3);
        let backend = Backend::sharded(2, Backend::golden());
        let fleet = run_one(
            &pool,
            FleetRequest::named("producer_consumer")
                .backend(backend)
                .budget(Limit::Cycles(50_000_000)),
        )
        .unwrap();
        let mut oracle = SimBuilder::named("producer_consumer")
            .backend(backend)
            .build()
            .unwrap();
        oracle.run(Limit::Cycles(50_000_000)).unwrap();
        assert_eq!(fleet.stop, StopCause::Halted);
        // Shard-for-shard bit identity against the in-process sharded
        // vehicle, plus the merged device log.
        let mut expected = Fingerprint::new();
        for i in 0..oracle.shard_count() {
            expected.mix_u64(fingerprint_engine(oracle.shard(i).unwrap()));
        }
        assert_eq!(fleet.digest, expected.digest(), "shard states diverged");
        assert_eq!(
            fleet.uart,
            oracle.sharded_stats().unwrap().uart,
            "device fabric diverged"
        );
    }

    #[test]
    fn fleet_shards_carry_their_core_link_identity() {
        // The doorbell all-to-all only converges when every fleet-built
        // shard owns a CoreLink with *its own* core id and the real
        // core count — a uniform device population (every shard id 0,
        // count 1) runs to completion with the wrong checksum.
        let pool = FleetPool::new(2);
        let fleet = run_one(
            &pool,
            FleetRequest::named("mailbox")
                .backend(Backend::sharded_pooled(2, 2, Backend::golden()))
                .budget(Limit::Cycles(50_000_000)),
        )
        .unwrap();
        assert_eq!(fleet.stop, StopCause::Halted);
        assert!(
            fleet.checksum_ok(),
            "doorbell all-reduce: d2={:#x}",
            fleet.d2
        );
    }

    #[test]
    fn digest_chain_is_identical_across_worker_counts() {
        let requests: Vec<FleetRequest> = ["gcd", "sieve", "fibonacci"]
            .iter()
            .map(|w| {
                FleetRequest::named(*w)
                    .backend(Backend::sharded(2, Backend::golden()))
                    .budget(Limit::Cycles(50_000_000))
            })
            .collect();
        let one = run_fleet(&FleetPool::new(1), &requests);
        let many = run_fleet(&FleetPool::new(4), &requests);
        for (a, b) in one.iter().zip(&many) {
            let (a, b) = (a.as_ref().unwrap(), b.as_ref().unwrap());
            assert_eq!(
                a.epoch_chain, b.epoch_chain,
                "{}: schedule leaked in",
                a.workload
            );
            assert_eq!(a.digest, b.digest);
            assert_eq!(a.stats, b.stats);
            assert_eq!(a.epochs, b.epochs);
        }
    }

    #[test]
    fn retirement_budgets_stop_without_halting() {
        let pool = FleetPool::new(2);
        let r = run_one(
            &pool,
            FleetRequest::named("sieve")
                .backend(Backend::golden())
                .budget(Limit::Retirements(1_000)),
        )
        .unwrap();
        assert_eq!(r.stop, StopCause::LimitReached);
        assert!(r.stats.retired >= 1_000);
    }

    #[test]
    fn unknown_workloads_fail_per_request_not_per_batch() {
        let pool = FleetPool::new(1);
        let results = run_fleet(
            &pool,
            &[
                FleetRequest::named("nonesuch"),
                FleetRequest::named("gcd").budget(Limit::Cycles(50_000_000)),
            ],
        );
        assert!(matches!(results[0], Err(SessionError::UnknownWorkload(_))));
        assert!(results[1].as_ref().unwrap().checksum_ok());
    }

    #[test]
    fn parked_sessions_resume_inside_pool_workers() {
        // Park on this thread, resume and finish inside a pool job —
        // the migration the portable snapshot format exists for.
        let pool = FleetPool::new(2);
        let backend = Backend::translated_compiled(cabt_core_detail());
        let mut donor = SimBuilder::named("gcd").backend(backend).build().unwrap();
        donor.run(Limit::Retirements(500)).unwrap();
        let parked = donor.park().unwrap();
        donor.run(Limit::Cycles(50_000_000)).unwrap();
        let expected = fingerprint_engine(&donor);

        let latch = Arc::new(Latch::new(1));
        let slot: Arc<Mutex<Option<u64>>> = Arc::new(Mutex::new(None));
        let (l2, s2) = (Arc::clone(&latch), Arc::clone(&slot));
        pool.spawn(move || {
            let mut resumed = Session::resume(&parked).unwrap();
            resumed.run(Limit::Cycles(50_000_000)).unwrap();
            *s2.lock().unwrap() = Some(fingerprint_engine(&resumed));
            l2.count_down();
        });
        latch.wait();
        assert_eq!(slot.lock().unwrap().unwrap(), expected);
    }

    fn cabt_core_detail() -> cabt_core::DetailLevel {
        cabt_core::DetailLevel::Cache
    }
}

//! The fixed work-stealing thread pool fleet scheduling runs on.
//!
//! The paper's prototyping platform runs *one* session; a fleet service
//! runs hundreds, and the thread-per-shard-per-round discipline of
//! `cabt_exec::run_epochs_parallel` does not scale past a handful of
//! concurrent sessions (M sessions × N shards × one spawn per round).
//! [`FleetPool`] replaces it with a fixed worker population: epoch
//! rounds are *work items*, and however many sessions are in flight,
//! host parallelism stays bounded by the worker count.
//!
//! Stealing discipline: every worker owns a deque and pops its own work
//! LIFO (a worker that just finished a shard round keeps the cache-hot
//! session); idle workers steal FIFO from the external injector queue
//! and then from their peers, oldest item first — so one long-running
//! session cannot starve the rest of the fleet. Jobs a worker spawns
//! land on its own deque; external spawns land on the injector.

use std::collections::VecDeque;
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::{Arc, Condvar, Mutex, MutexGuard, PoisonError, Weak};
use std::thread;

/// Locks a pool-internal mutex, recovering from poison. The pool's
/// shared state (job deques, the wake generation, latch counters) is
/// a plain collection of values with no multi-step invariants, so the
/// state behind a poisoned lock is still coherent — a panicking *job*
/// must not take the whole worker population down with it.
fn lock_ok<T: ?Sized>(m: &Mutex<T>) -> MutexGuard<'_, T> {
    m.lock().unwrap_or_else(PoisonError::into_inner)
}

/// One unit of pool work (an epoch round of one shard, a batch driver's
/// bookkeeping step, …).
pub(crate) type Job = Box<dyn FnOnce() + Send + 'static>;

thread_local! {
    /// The pool this thread is a worker of, if any — lets jobs spawned
    /// from inside a worker land on the worker's own deque (stolen only
    /// when a peer goes idle).
    static WORKER: std::cell::RefCell<Option<(Weak<PoolCore>, usize)>> =
        const { std::cell::RefCell::new(None) };
}

/// Shared state of a [`FleetPool`]: the deques, the sleep gate and the
/// shutdown flag. Jobs hold an `Arc` of this so they can schedule
/// follow-up work (the event-driven epoch scheduler reschedules a
/// session's next round from the job that completed its last).
pub(crate) struct PoolCore {
    /// One deque per worker, then the injector queue last.
    queues: Vec<Mutex<VecDeque<Job>>>,
    /// Guards sleeping: pushes bump the generation under this lock, so
    /// a worker that re-checks the queues under it cannot miss a wake.
    gate: Mutex<u64>,
    wake: Condvar,
    shutdown: AtomicBool,
}

impl PoolCore {
    /// Enqueues a job: onto the current worker's own deque when called
    /// from inside this pool, onto the injector otherwise.
    pub(crate) fn push(self: &Arc<Self>, job: Job) {
        let slot = WORKER.with(|w| {
            w.borrow()
                .as_ref()
                .and_then(|(core, id)| (Weak::as_ptr(core) == Arc::as_ptr(self)).then_some(*id))
        });
        let q = slot.unwrap_or(self.queues.len() - 1);
        lock_ok(&self.queues[q]).push_back(job);
        let mut generation = lock_ok(&self.gate);
        *generation += 1;
        drop(generation);
        self.wake.notify_all();
    }

    /// Own deque LIFO, then injector and peers FIFO.
    fn grab(&self, id: usize) -> Option<Job> {
        if let Some(job) = lock_ok(&self.queues[id]).pop_back() {
            return Some(job);
        }
        let n = self.queues.len();
        // Start at the injector (index n-1), then sweep the peers.
        for step in 0..n {
            let q = (n - 1 + step) % n;
            if q == id {
                continue;
            }
            if let Some(job) = lock_ok(&self.queues[q]).pop_front() {
                return Some(job);
            }
        }
        None
    }

    fn has_work(&self) -> bool {
        self.queues.iter().any(|q| !lock_ok(q).is_empty())
    }

    fn worker(self: Arc<Self>, id: usize) {
        WORKER.with(|w| *w.borrow_mut() = Some((Arc::downgrade(&self), id)));
        loop {
            if let Some(job) = self.grab(id) {
                // A panicking job must not kill the worker: the pool
                // would silently lose capacity (and, once every worker
                // died, deadlock the latch-waiting coordinator). The
                // session the job belonged to reports the failure
                // through its own outcome slot; the worker moves on.
                let _ = std::panic::catch_unwind(std::panic::AssertUnwindSafe(job));
                continue;
            }
            let generation = lock_ok(&self.gate);
            if self.shutdown.load(Ordering::Acquire) {
                return;
            }
            // Re-check under the gate: a push between `grab` and the
            // lock bumped the generation and must not be slept through.
            if self.has_work() {
                continue;
            }
            drop(
                self.wake
                    .wait(generation)
                    .unwrap_or_else(PoisonError::into_inner),
            );
        }
    }
}

/// A fixed pool of worker threads executing fleet work items.
///
/// Dropping the pool shuts it down: workers finish the jobs already
/// queued, then exit and are joined. [`FleetPool::spawn`] is the raw
/// entry; the epoch scheduler in the crate root is the intended client.
pub struct FleetPool {
    core: Arc<PoolCore>,
    handles: Vec<thread::JoinHandle<()>>,
}

impl FleetPool {
    /// A pool of `workers` threads (clamped to ≥ 1).
    pub fn new(workers: usize) -> FleetPool {
        let workers = workers.max(1);
        let core = Arc::new(PoolCore {
            queues: (0..=workers).map(|_| Mutex::new(VecDeque::new())).collect(),
            gate: Mutex::new(0),
            wake: Condvar::new(),
            shutdown: AtomicBool::new(false),
        });
        // A host refusing threads mid-loop degrades the pool to the
        // workers it did get — queues of spawn-failed slots are still
        // drained by the survivors via stealing. Only a host that
        // grants *no* threads at all is unrecoverable: every spawn()
        // would queue work nobody runs, so fail loudly up front.
        let handles: Vec<_> = (0..workers)
            .filter_map(|id| {
                let core = Arc::clone(&core);
                thread::Builder::new()
                    .name(format!("fleet-worker-{id}"))
                    .spawn(move || core.worker(id))
                    .ok()
            })
            .collect();
        assert!(
            !handles.is_empty(),
            "fleet pool: the host refused to spawn even one worker thread"
        );
        FleetPool { core, handles }
    }

    /// A pool sized to the host's available parallelism.
    pub fn with_host_parallelism() -> FleetPool {
        let workers = thread::available_parallelism().map_or(1, std::num::NonZero::get);
        FleetPool::new(workers)
    }

    /// Number of worker threads.
    pub fn workers(&self) -> usize {
        self.handles.len()
    }

    /// Enqueues a job for execution on some worker.
    pub fn spawn(&self, job: impl FnOnce() + Send + 'static) {
        self.core.push(Box::new(job));
    }

    /// The shared core, for jobs that schedule follow-up work.
    pub(crate) fn core(&self) -> Arc<PoolCore> {
        Arc::clone(&self.core)
    }
}

impl Drop for FleetPool {
    fn drop(&mut self) {
        self.core.shutdown.store(true, Ordering::Release);
        {
            let mut generation = lock_ok(&self.core.gate);
            *generation += 1;
        }
        self.core.wake.notify_all();
        for h in self.handles.drain(..) {
            let _ = h.join();
        }
    }
}

/// A countdown latch: the coordinator waits until `n` completions have
/// been counted down — how batch drivers block on a fleet of
/// event-driven sessions without polling.
pub struct Latch {
    remaining: Mutex<usize>,
    done: Condvar,
}

impl Latch {
    /// A latch expecting `n` completions.
    pub fn new(n: usize) -> Latch {
        Latch {
            remaining: Mutex::new(n),
            done: Condvar::new(),
        }
    }

    /// Records one completion.
    pub fn count_down(&self) {
        let mut remaining = lock_ok(&self.remaining);
        *remaining = remaining.saturating_sub(1);
        if *remaining == 0 {
            self.done.notify_all();
        }
    }

    /// Blocks until every expected completion has been counted down.
    pub fn wait(&self) {
        let mut remaining = lock_ok(&self.remaining);
        while *remaining > 0 {
            remaining = self
                .done
                .wait(remaining)
                .unwrap_or_else(PoisonError::into_inner);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::atomic::AtomicUsize;

    #[test]
    fn pool_runs_every_job_exactly_once() {
        let pool = FleetPool::new(4);
        let hits = Arc::new(AtomicUsize::new(0));
        let latch = Arc::new(Latch::new(100));
        for _ in 0..100 {
            let (hits, latch) = (Arc::clone(&hits), Arc::clone(&latch));
            pool.spawn(move || {
                hits.fetch_add(1, Ordering::Relaxed);
                latch.count_down();
            });
        }
        latch.wait();
        assert_eq!(hits.load(Ordering::Relaxed), 100);
    }

    #[test]
    fn jobs_spawned_from_workers_run_and_steal_across_workers() {
        // A chain of follow-up jobs spawned from inside worker threads —
        // the shape of the event-driven epoch scheduler.
        let pool = FleetPool::new(3);
        let latch = Arc::new(Latch::new(1));
        let core = pool.core();
        fn step(core: Arc<PoolCore>, latch: Arc<Latch>, left: usize) {
            if left == 0 {
                latch.count_down();
                return;
            }
            let next = Arc::clone(&core);
            core.push(Box::new(move || step(next, latch, left - 1)));
        }
        step(core, Arc::clone(&latch), 64);
        latch.wait();
    }

    #[test]
    fn a_panicking_job_does_not_kill_its_worker() {
        // One worker, so the panicking job and the jobs after it are
        // guaranteed to share a thread: if the panic killed the worker,
        // the follow-up jobs would never run and the latch would hang.
        let pool = FleetPool::new(1);
        let hits = Arc::new(AtomicUsize::new(0));
        let latch = Arc::new(Latch::new(16));
        for i in 0..16 {
            let (hits, latch) = (Arc::clone(&hits), Arc::clone(&latch));
            pool.spawn(move || {
                latch.count_down();
                if i % 4 == 0 {
                    panic!("job {i} failed");
                }
                hits.fetch_add(1, Ordering::Relaxed);
            });
        }
        latch.wait();
        assert_eq!(hits.load(Ordering::Relaxed), 12);
    }

    #[test]
    fn drop_finishes_queued_work() {
        let hits = Arc::new(AtomicUsize::new(0));
        let latch = Arc::new(Latch::new(8));
        {
            let pool = FleetPool::new(2);
            for _ in 0..8 {
                let (hits, latch) = (Arc::clone(&hits), Arc::clone(&latch));
                pool.spawn(move || {
                    hits.fetch_add(1, Ordering::Relaxed);
                    latch.count_down();
                });
            }
            latch.wait();
        }
        assert_eq!(hits.load(Ordering::Relaxed), 8);
    }
}

//! `fleet-server` — batch/server front end over the fleet scheduler.
//!
//! Reads one request per line, emits one JSON result line per request.
//! By default it serves stdin/stdout (batch mode: pipe a request file
//! in, collect JSON out); with `--listen ADDR` it serves the same
//! protocol to TCP clients, one connection at a time.
//!
//! ```text
//! fleet-server [--workers N] [--listen ADDR]
//!
//! run <workload> <backend> cycles|retirements <n>
//!     Run the named workload on the backend descriptor (see
//!     `Backend` `Display`/`FromStr`, e.g. `golden:compiled`,
//!     `sharded-4x-par:translated:cache`) under the budget.
//!     → {"ok":true,"workload":...,"stats":{...},"uart":"..."}
//! park <workload> <backend> cycles|retirements <n>
//!     Run under the budget, then park: the session is serialized to
//!     the versioned portable format and returned as hex.
//!     → {"ok":true,"parked":"<hex>", ...}
//! resume <hex> cycles|retirements <n>
//!     Rebuild a parked session from hex bytes — from this process or
//!     any other — and continue it under the budget.
//! analyze <workload>
//!     Run the static analyzer over a named workload (or a `bad-*`
//!     known-bad corpus entry) without executing it.
//!     → {"ok":true,"report":{"target":...,"clean":...,"findings":[...]}}
//! workloads | backends
//!     List known workload names / backend descriptors.
//! quit
//!     End the conversation.
//! ```

use cabt_exec::Limit;
use cabt_fleet::{run_one, FleetPool, FleetRequest, FleetResult};
use cabt_sim::{Backend, Session, SessionError};
use std::io::{BufRead, BufReader, Write};

const WORKLOAD_NAMES: [&str; 8] = [
    "gcd",
    "dpcm",
    "fir",
    "ellip",
    "sieve",
    "subband",
    "fibonacci",
    "producer_consumer",
];

fn main() {
    let mut workers = None;
    let mut listen = None;
    let mut args = std::env::args().skip(1);
    while let Some(arg) = args.next() {
        match arg.as_str() {
            "--workers" => {
                let n = args
                    .next()
                    .and_then(|v| v.parse::<usize>().ok())
                    .unwrap_or_else(|| die("--workers needs a positive integer"));
                workers = Some(n.max(1));
            }
            "--listen" => {
                listen = Some(args.next().unwrap_or_else(|| die("--listen needs ADDR")));
            }
            "--help" | "-h" => {
                eprintln!("usage: fleet-server [--workers N] [--listen ADDR]");
                eprintln!("protocol: run|park <workload> <backend> cycles|retirements <n>");
                eprintln!("          resume <hex> cycles|retirements <n>");
                eprintln!("          workloads | backends | quit");
                return;
            }
            other => die(&format!("unknown argument `{other}`")),
        }
    }
    let pool = match workers {
        Some(n) => FleetPool::new(n),
        None => FleetPool::with_host_parallelism(),
    };
    match listen {
        None => {
            let stdin = std::io::stdin();
            let mut stdout = std::io::stdout().lock();
            serve(&pool, &mut stdin.lock(), &mut stdout);
        }
        Some(addr) => {
            let listener = std::net::TcpListener::bind(&addr)
                .unwrap_or_else(|e| die(&format!("cannot listen on {addr}: {e}")));
            eprintln!("fleet-server listening on {addr}");
            for conn in listener.incoming() {
                let Ok(conn) = conn else { continue };
                let mut writer = match conn.try_clone() {
                    Ok(w) => w,
                    Err(_) => continue,
                };
                serve(&pool, &mut BufReader::new(conn), &mut writer);
            }
        }
    }
}

fn die(msg: &str) -> ! {
    eprintln!("fleet-server: {msg}");
    std::process::exit(2);
}

/// One conversation: request lines in, JSON result lines out.
fn serve(pool: &FleetPool, input: &mut dyn BufRead, output: &mut dyn Write) {
    for line in input.lines() {
        let Ok(line) = line else { break };
        let line = line.trim();
        if line.is_empty() || line.starts_with('#') {
            continue;
        }
        if line == "quit" {
            break;
        }
        let reply = dispatch(pool, line)
            .unwrap_or_else(|e| format!("{{\"ok\":false,\"error\":{}}}", json_str(&e.to_string())));
        if writeln!(output, "{reply}")
            .and_then(|()| output.flush())
            .is_err()
        {
            break;
        }
    }
}

fn dispatch(pool: &FleetPool, line: &str) -> Result<String, SessionError> {
    let mut words = line.split_whitespace();
    let verb = words.next().unwrap_or_default();
    match verb {
        "workloads" => Ok(format!(
            "{{\"ok\":true,\"workloads\":[{}]}}",
            WORKLOAD_NAMES
                .iter()
                .map(|w| json_str(w))
                .collect::<Vec<_>>()
                .join(",")
        )),
        "backends" => Ok(format!(
            "{{\"ok\":true,\"backends\":[{}]}}",
            Backend::all()
                .iter()
                .map(|b| json_str(&b.to_string()))
                .collect::<Vec<_>>()
                .join(",")
        )),
        "run" => {
            let (workload, backend, budget) = parse_run(&mut words)?;
            let result = run_one(
                pool,
                FleetRequest::named(workload)
                    .backend(backend)
                    .budget(budget),
            )?;
            Ok(result_json(&result, None))
        }
        "park" => {
            let (workload, backend, budget) = parse_run(&mut words)?;
            // Parking needs the session object itself, so the budgeted
            // prefix runs as a dedicated session rather than a fleet
            // unit; resume continues it anywhere.
            let mut session = cabt_sim::SimBuilder::named(&workload)
                .backend(backend)
                .build()?;
            session.run(budget)?;
            let parked = session.park()?;
            Ok(format!(
                "{{\"ok\":true,\"workload\":{},\"backend\":{},\"parked\":{}}}",
                json_str(&workload),
                json_str(&backend.to_string()),
                json_str(&hex_encode(&parked)),
            ))
        }
        "analyze" => {
            let workload = words
                .next()
                .ok_or_else(|| protocol("analyze needs <workload>"))?;
            // Known-bad corpus entries are addressable too, so a client
            // can exercise the expected-findings path over the wire.
            let report = if workload.starts_with("bad-") {
                cabt_sim::analyze::analyze_known_bad(workload)?
            } else {
                cabt_sim::analyze::analyze_named(workload)?
            };
            Ok(format!(
                "{{\"ok\":true,\"report\":{}}}",
                cabt_sim::analyze::report_json(workload, &report)
            ))
        }
        "resume" => {
            let hex = words
                .next()
                .ok_or_else(|| protocol("resume needs <hex> bytes"))?;
            let budget = parse_budget(&mut words)?;
            let bytes = hex_decode(hex).ok_or_else(|| protocol("bad hex in resume"))?;
            let mut session = Session::resume(&bytes)?;
            let stop = session.run(budget)?;
            let stats = cabt_exec::ExecutionEngine::engine_stats(&session);
            Ok(format!(
                "{{\"ok\":true,\"backend\":{},\"stop\":{},\"d2\":{},\"stats\":{}}}",
                json_str(&session.backend().to_string()),
                json_str(stop_name(stop)),
                session.read_d(2),
                stats_json(&stats),
            ))
        }
        other => Err(protocol(&format!("unknown verb `{other}`"))),
    }
}

fn parse_run(
    words: &mut std::str::SplitWhitespace<'_>,
) -> Result<(String, Backend, Limit), SessionError> {
    let workload = words
        .next()
        .ok_or_else(|| protocol("run needs <workload>"))?
        .to_string();
    let backend: Backend = words
        .next()
        .ok_or_else(|| protocol("run needs <backend>"))?
        .parse()?;
    let budget = parse_budget(words)?;
    Ok((workload, backend, budget))
}

fn parse_budget(words: &mut std::str::SplitWhitespace<'_>) -> Result<Limit, SessionError> {
    let kind = words
        .next()
        .ok_or_else(|| protocol("budget needs cycles|retirements <n>"))?;
    let n: u64 = words
        .next()
        .and_then(|v| v.parse().ok())
        .ok_or_else(|| protocol("budget needs a numeric bound"))?;
    match kind {
        "cycles" => Ok(Limit::Cycles(n)),
        "retirements" => Ok(Limit::Retirements(n)),
        other => Err(protocol(&format!("unknown budget kind `{other}`"))),
    }
}

fn protocol(msg: &str) -> SessionError {
    SessionError::ParseBackend(format!("protocol: {msg}"))
}

fn result_json(r: &FleetResult, parked_hex: Option<&str>) -> String {
    let uart_text: String = r
        .uart
        .iter()
        .map(|&(_, b)| {
            if b.is_ascii_graphic() || b == b' ' {
                b as char
            } else {
                '.'
            }
        })
        .collect();
    let mut out = format!(
        "{{\"ok\":true,\"workload\":{},\"backend\":{},\"stop\":{},\"checksum_ok\":{},\"d2\":{},\"epochs\":{},\"digest\":\"{:016x}\",\"epoch_chain\":\"{:016x}\",\"stats\":{},\"uart\":{}",
        json_str(&r.workload),
        json_str(&r.backend.to_string()),
        json_str(stop_name(r.stop)),
        r.checksum_ok(),
        r.d2,
        r.epochs,
        r.digest,
        r.epoch_chain,
        stats_json(&r.stats),
        json_str(&uart_text),
    );
    if let Some(hex) = parked_hex {
        out.push_str(",\"parked\":");
        out.push_str(&json_str(hex));
    }
    out.push('}');
    out
}

fn stats_json(s: &cabt_exec::EngineStats) -> String {
    format!(
        "{{\"cycles\":{},\"retired\":{},\"stall_cycles\":{}}}",
        s.cycles, s.retired, s.stall_cycles
    )
}

fn stop_name(stop: cabt_exec::StopCause) -> &'static str {
    match stop {
        cabt_exec::StopCause::Halted => "halted",
        cabt_exec::StopCause::LimitReached => "limit-reached",
    }
}

fn json_str(s: &str) -> String {
    let mut out = String::with_capacity(s.len() + 2);
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out.push('"');
    out
}

fn hex_encode(bytes: &[u8]) -> String {
    let mut out = String::with_capacity(bytes.len() * 2);
    for b in bytes {
        out.push_str(&format!("{b:02x}"));
    }
    out
}

fn hex_decode(hex: &str) -> Option<Vec<u8>> {
    if !hex.len().is_multiple_of(2) {
        return None;
    }
    (0..hex.len())
        .step_by(2)
        .map(|i| u8::from_str_radix(&hex[i..i + 2], 16).ok())
        .collect()
}

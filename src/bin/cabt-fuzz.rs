//! Differential fuzz loop CLI: generates seed-reproducible guest
//! programs and runs each across the full execution matrix — golden
//! and translated vehicles × naive/pre-decoded/compiled/trace
//! dispatch, RTL where the workload fits, sharded
//! sequential-vs-parallel schedules — comparing per-stride digest
//! chains, final architectural state, guest memory, UART logs, and
//! fault parity.
//!
//! ```sh
//! cabt-fuzz --seed 42                # one seed, full matrix, verbose
//! cabt-fuzz --seeds 0..1000 --strict # campaign: nonzero exit on any divergence
//! cabt-fuzz --smoke                  # bounded CI profile (~seconds)
//! cabt-fuzz --seed 42 --emit         # print the generated assembly and exit
//! cabt-fuzz --seeds 0..100 --shrink  # auto-minimize any diverging seed
//! ```
//!
//! Every failure line names the seed and the check that disagreed;
//! `cabt-fuzz --seed N` reproduces it exactly (generation is a pure
//! function of the seed). See `docs/fuzzing.md`.

use cabt_fuzz::{generate, run_program, shrink, CaseStatus, MatrixOptions};
use std::process::ExitCode;

fn usage() -> ExitCode {
    eprintln!(
        "usage: cabt-fuzz [--seed N | --seeds A..B] [--strict] [--smoke] [--emit] [--shrink]"
    );
    ExitCode::FAILURE
}

/// `A..B` (half-open) or a single `N` (meaning `N..N+1`).
fn parse_range(s: &str) -> Option<(u64, u64)> {
    if let Some((a, b)) = s.split_once("..") {
        Some((a.parse().ok()?, b.parse().ok()?))
    } else {
        let n: u64 = s.parse().ok()?;
        Some((n, n + 1))
    }
}

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let mut range = (0u64, 100u64);
    let mut strict = false;
    let mut smoke = false;
    let mut emit = false;
    let mut do_shrink = false;
    let mut explicit_seed = false;
    let mut it = args.iter();
    while let Some(a) = it.next() {
        match a.as_str() {
            "--strict" => strict = true,
            "--smoke" => smoke = true,
            "--emit" => emit = true,
            "--shrink" => do_shrink = true,
            "--seed" | "--seeds" => match it.next().and_then(|s| parse_range(s)) {
                Some(r) => {
                    range = r;
                    explicit_seed = a == "--seed";
                }
                None => return usage(),
            },
            _ => return usage(),
        }
    }
    if range.0 >= range.1 {
        return usage();
    }
    let opts = if smoke {
        MatrixOptions::smoke()
    } else {
        MatrixOptions::default()
    };
    if smoke && !explicit_seed && args.iter().all(|a| !a.starts_with("--seed")) {
        // A few seconds of release-mode wall clock on the trimmed
        // matrix — wide enough to catch a broken tier, cheap enough
        // to sit in the lint job of every CI run.
        range = (0, 400);
    }

    if emit {
        for seed in range.0..range.1 {
            print!("{}", generate(seed).source());
        }
        return ExitCode::SUCCESS;
    }

    let (mut pass, mut skip, mut diverged, mut errors) = (0u64, 0u64, 0u64, 0u64);
    for seed in range.0..range.1 {
        let prog = generate(seed);
        let report = run_program(&prog, &opts);
        match &report.status {
            CaseStatus::Pass => {
                pass += 1;
                if explicit_seed {
                    println!(
                        "seed {seed}: pass ({} checks, {} retired)",
                        report.checks, report.retired
                    );
                }
            }
            CaseStatus::Skip(reason) => {
                skip += 1;
                if explicit_seed {
                    println!("seed {seed}: skip: {reason}");
                }
            }
            CaseStatus::Error(e) => {
                errors += 1;
                eprintln!("seed {seed}: harness error: {e}");
            }
            CaseStatus::Diverged(divs) => {
                diverged += 1;
                for d in divs {
                    eprintln!("seed {seed}: DIVERGED {d}");
                }
                if do_shrink {
                    let check = &divs[0].check;
                    let (min, attempts) = shrink(&prog, check, &opts, 400);
                    eprintln!(
                        "seed {seed}: shrunk against [{check}] in {attempts} runs; minimized source:"
                    );
                    eprint!("{}", min.source());
                }
            }
        }
        let done = seed - range.0 + 1;
        if !explicit_seed && done.is_multiple_of(100) {
            eprintln!(
                "... {done}/{} seeds ({pass} pass, {skip} skip, {diverged} diverged, {errors} errors)",
                range.1 - range.0
            );
        }
    }
    println!(
        "{} seeds: {pass} pass, {skip} skip, {diverged} diverged, {errors} errors",
        range.1 - range.0
    );
    if diverged > 0 || errors > 0 || (strict && pass == 0) {
        return ExitCode::FAILURE;
    }
    ExitCode::SUCCESS
}

//! Static-analysis lint CLI: runs the `exec::analyze` dataflow passes
//! (reachability, use-before-def, constant-store checking, loop
//! structure + trace prediction) over guest programs and prints one
//! JSON report line per target.
//!
//! ```sh
//! cabt-analyze prog.elf prog2.s          # files: ELF images or .s assembly
//! cabt-analyze --workload gcd            # a bundled workload by name
//! cabt-analyze --all-workloads --strict  # CI gate: nonzero exit on findings
//! cabt-analyze --known-bad               # expected-findings mode over the corpus
//! ```
//!
//! `--strict` exits nonzero when any target has findings. `--known-bad`
//! inverts the gate: every corpus entry must produce exactly its
//! seeded defect (and nothing else), so a pass that silently loses a
//! detection fails CI just as loudly as a false positive would.

use cabt::sim::analyze::{analyze_elf, report_json, AnalysisReport};
use cabt_isa::elf::ElfFile;
use std::process::ExitCode;

fn usage() -> ExitCode {
    eprintln!(
        "usage: cabt-analyze [<file.elf|file.s>...] [--workload NAME]... \
         [--all-workloads] [--known-bad] [--strict]"
    );
    ExitCode::FAILURE
}

/// One thing to analyze: a display name and how to get its image.
enum Target {
    File(String),
    Workload(String),
    KnownBad(String, &'static str),
}

impl Target {
    fn name(&self) -> &str {
        match self {
            Target::File(p) => p,
            Target::Workload(n) | Target::KnownBad(n, _) => n,
        }
    }

    fn report(&self) -> Result<AnalysisReport, String> {
        match self {
            Target::File(path) => {
                let bytes = std::fs::read(path).map_err(|e| format!("cannot read {path}: {e}"))?;
                let elf = if path.ends_with(".s") || path.ends_with(".S") {
                    let src = String::from_utf8(bytes)
                        .map_err(|e| format!("{path}: not UTF-8 assembly: {e}"))?;
                    cabt::tricore::asm::assemble(&src).map_err(|e| format!("{path}: {e}"))?
                } else {
                    ElfFile::parse(&bytes).map_err(|e| format!("{path}: {e}"))?
                };
                analyze_elf(&elf).map_err(|e| format!("{path}: {e}"))
            }
            Target::Workload(name) => {
                cabt::sim::analyze::analyze_named(name).map_err(|e| format!("{name}: {e}"))
            }
            Target::KnownBad(name, _) => {
                cabt::sim::analyze::analyze_known_bad(name).map_err(|e| format!("{name}: {e}"))
            }
        }
    }
}

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let mut targets: Vec<Target> = Vec::new();
    let mut strict = false;
    let mut it = args.iter();
    while let Some(a) = it.next() {
        match a.as_str() {
            "--strict" => strict = true,
            "--workload" => match it.next() {
                Some(name) => targets.push(Target::Workload(name.clone())),
                None => return usage(),
            },
            "--all-workloads" => {
                for w in cabt::workloads::fig5_set() {
                    targets.push(Target::Workload(w.name.to_string()));
                }
                targets.push(Target::Workload("fibonacci".into()));
                targets.push(Target::Workload("producer_consumer".into()));
            }
            "--known-bad" => {
                for k in cabt::workloads::known_bad_set() {
                    targets.push(Target::KnownBad(k.name.to_string(), k.expected_finding));
                }
            }
            other if !other.starts_with('-') => targets.push(Target::File(other.to_string())),
            _ => return usage(),
        }
    }
    if targets.is_empty() {
        return usage();
    }
    let mut errored = false;
    let mut dirty = false;
    for t in &targets {
        match t.report() {
            Ok(report) => {
                println!("{}", report_json(t.name(), &report));
                match t {
                    Target::KnownBad(name, expected) => {
                        let ok = report.findings.len() == 1
                            && report.findings[0].kind.name() == *expected;
                        if !ok {
                            eprintln!(
                                "{name}: expected exactly one `{expected}` finding, got {:?}",
                                report
                                    .findings
                                    .iter()
                                    .map(|f| f.kind.name())
                                    .collect::<Vec<_>>()
                            );
                            errored = true;
                        }
                    }
                    _ => {
                        if let Some(reason) = report.skipped {
                            // A declined program is a warning, not a
                            // finding: surfaced loudly, but it neither
                            // passes silently nor fails the gate.
                            eprintln!("{}: skipped: {reason}", t.name());
                        } else if !report.is_clean() {
                            dirty = true;
                        }
                    }
                }
            }
            Err(msg) => {
                eprintln!("{msg}");
                errored = true;
            }
        }
    }
    if errored || (strict && dirty) {
        ExitCode::FAILURE
    } else {
        ExitCode::SUCCESS
    }
}

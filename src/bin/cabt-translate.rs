//! Command-line front end for the translator: assemble a source file,
//! translate it at a chosen detail level, and print the annotated
//! listing plus (optionally) run it on the platform.
//!
//! ```sh
//! cargo run --release --bin cabt-translate -- prog.s --level cache --run
//! ```

use cabt::prelude::*;
use std::process::ExitCode;

fn usage() -> ExitCode {
    eprintln!(
        "usage: cabt-translate <file.s> [--level functional|static|branch|cache] \
         [--per-instruction] [--run] [--listing]"
    );
    ExitCode::FAILURE
}

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let mut path = None;
    let mut level = DetailLevel::Static;
    let mut granularity = Granularity::BasicBlock;
    let mut run = false;
    let mut listing = false;
    let mut it = args.iter();
    while let Some(a) = it.next() {
        match a.as_str() {
            "--level" => {
                level = match it.next().map(String::as_str) {
                    Some("functional") => DetailLevel::Functional,
                    Some("static") => DetailLevel::Static,
                    Some("branch") => DetailLevel::BranchPredict,
                    Some("cache") => DetailLevel::Cache,
                    _ => return usage(),
                }
            }
            "--per-instruction" => granularity = Granularity::PerInstruction,
            "--run" => run = true,
            "--listing" => listing = true,
            other if path.is_none() && !other.starts_with('-') => path = Some(other.to_string()),
            _ => return usage(),
        }
    }
    let Some(path) = path else { return usage() };

    let source = match std::fs::read_to_string(&path) {
        Ok(s) => s,
        Err(e) => {
            eprintln!("cannot read {path}: {e}");
            return ExitCode::FAILURE;
        }
    };
    let elf = match assemble(&source) {
        Ok(e) => e,
        Err(e) => {
            eprintln!("{path}: {e}");
            return ExitCode::FAILURE;
        }
    };
    let translated = match Translator::new(level)
        .with_granularity(granularity)
        .translate(&elf)
    {
        Ok(t) => t,
        Err(e) => {
            eprintln!("translation failed: {e}");
            return ExitCode::FAILURE;
        }
    };

    println!(
        "{}: {} source instructions -> {} packets ({} slots) at level `{level}`",
        path,
        translated.stats.source_instructions,
        translated.stats.target_packets,
        translated.stats.target_slots
    );
    println!(
        "blocks: {}, statically-known I/O accesses: {}, unknown bases: {}",
        translated.stats.blocks, translated.stats.io_accesses, translated.stats.unknown_bases
    );
    if listing {
        println!("{}", translated.listing());
    }
    if run {
        let mut platform = match Platform::new(&translated, PlatformConfig::default()) {
            Ok(p) => p,
            Err(e) => {
                eprintln!("platform setup failed: {e}");
                return ExitCode::FAILURE;
            }
        };
        match platform.run(10_000_000_000) {
            Ok(stats) => {
                println!(
                    "run: {} target cycles, {} generated SoC cycles ({} corrections)",
                    stats.target_cycles,
                    stats.total_generated(),
                    stats.corrected_cycles
                );
                if !stats.uart.is_empty() {
                    let bytes: Vec<u8> = stats.uart.iter().map(|&(_, b)| b).collect();
                    println!("uart: {:?}", String::from_utf8_lossy(&bytes));
                }
            }
            Err(e) => {
                eprintln!("run failed: {e}");
                return ExitCode::FAILURE;
            }
        }
    }
    ExitCode::SUCCESS
}

#![forbid(unsafe_code)]
//! # CABT — Cycle-Accurate Binary Translation for SoC Rapid Prototyping
//!
//! A from-scratch Rust reproduction of *Schnerr, Bringmann, Rosenstiel:
//! "Cycle Accurate Binary Translation for Simulation Acceleration in
//! Rapid Prototyping of SoCs", DATE 2005*.
//!
//! The system translates object code of an embedded SoC processor core
//! (a TriCore-like ISA) into VLIW (C6x-like) target code annotated with
//! **cycle-generation instructions**: each translated basic block starts
//! by telling a synchronization device how many source-processor cycles
//! it represents, the device clocks the attached SoC hardware in
//! parallel with the block's execution, and a wait access at the block
//! end re-synchronizes the two (Fig. 2 of the paper). Dynamic
//! correction code refines the static prediction for branch outcomes and
//! instruction-cache misses (Fig. 3/4).
//!
//! This crate is the umbrella: it re-exports the subsystem crates and
//! hosts the runnable examples and the cross-crate integration tests.
//!
//! | crate | role |
//! |---|---|
//! | [`isa`] | memory model, ELF32 reader/writer, deterministic PRNG |
//! | [`exec`] | `ExecutionEngine` — the shared dispatch interface of every simulator |
//! | [`tricore`] | source ISA, assembler, cycle-accurate golden model |
//! | [`vliw`] | target VLIW ISA, binary container format, simulator |
//! | [`core`] | **the translator** (the paper's contribution) |
//! | [`platform`] | synchronization device, SoC bus, peripherals |
//! | [`rtlsim`] | event-driven RT-level baseline simulator |
//! | [`debug`] | generic lockstep driver, dual-translation debugger + RSP packet layer |
//! | [`workloads`] | the paper's benchmark programs |
//!
//! Both simulators are **pre-decoded execution engines**: at load, the
//! program is decoded once into a dense table whose entries carry their
//! fall-through and branch-target *indices* (plus cached operand sets
//! and timing records), so the hot loop is an index-chased dispatch
//! over a flat `Vec` instead of a fetch→decode→match per step — ≥2×
//! faster instruction/packet dispatch than the retained naive
//! interpreters (kept behind `DispatchMode::Naive`/`VliwDispatch::Naive`
//! and proven bit-identical by the `predecode_diff` differential
//! suite). The platform harness, the debugger and the benchmark tables
//! all drive engines through [`cabt_exec::ExecutionEngine`], which is
//! where future backends (JIT, sharded multi-core) plug in.
//!
//! # Quickstart
//!
//! ```
//! use cabt::prelude::*;
//!
//! // 1. Assemble a source program (normally you'd load existing object code).
//! let elf = assemble(
//!     r#"
//!     .text
//! _start:
//!     mov  %d0, 6
//!     mov  %d2, 1
//! fact:
//!     mul  %d2, %d2, %d0
//!     addi %d0, %d0, -1
//!     jnz  %d0, fact
//!     debug
//! "#,
//! )?;
//!
//! // 2. Reference: the cycle-accurate golden model (the "evaluation board").
//! let mut board = Simulator::new(&elf)?;
//! let measured = board.run(10_000)?;
//!
//! // 3. Translate with full dynamic correction (branch prediction and
//! //    instruction-cache simulation).
//! let translated = Translator::new(DetailLevel::Cache).translate(&elf)?;
//!
//! // 4. Run on the prototyping platform; the program clocks the SoC bus.
//! let mut platform = Platform::new(&translated, PlatformConfig::default())?;
//! let stats = platform.run(1_000_000)?;
//!
//! assert_eq!(board.cpu.d(2), 720); // 6!
//! let dev = (stats.total_generated() as f64 - measured.cycles as f64).abs()
//!     / measured.cycles as f64;
//! assert!(dev < 0.05, "generated cycles track the measured count");
//! # Ok::<(), Box<dyn std::error::Error>>(())
//! ```

pub use cabt_core as core;
pub use cabt_debug as debug;
pub use cabt_exec as exec;
pub use cabt_isa as isa;
pub use cabt_platform as platform;
pub use cabt_rtlsim as rtlsim;
pub use cabt_tricore as tricore;
pub use cabt_vliw as vliw;
pub use cabt_workloads as workloads;

/// The most common imports in one place.
pub mod prelude {
    pub use cabt_core::{DetailLevel, Granularity, Translated, Translator};
    pub use cabt_debug::{DebugSession, StopReason};
    pub use cabt_exec::{ExecutionEngine, Limit, StopCause};
    pub use cabt_platform::{Platform, PlatformConfig, SyncRate};
    pub use cabt_tricore::asm::assemble;
    pub use cabt_tricore::sim::Simulator;
    pub use cabt_workloads::Workload;
}

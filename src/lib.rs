//! # CABT — Cycle-Accurate Binary Translation for SoC Rapid Prototyping
//!
//! A from-scratch Rust reproduction of *Schnerr, Bringmann, Rosenstiel:
//! "Cycle Accurate Binary Translation for Simulation Acceleration in
//! Rapid Prototyping of SoCs", DATE 2005*.
//!
//! The system translates object code of an embedded SoC processor core
//! (a TriCore-like ISA) into VLIW (C6x-like) target code annotated with
//! **cycle-generation instructions**: each translated basic block starts
//! by telling a synchronization device how many source-processor cycles
//! it represents, the device clocks the attached SoC hardware in
//! parallel with the block's execution, and a wait access at the block
//! end re-synchronizes the two (Fig. 2 of the paper). Dynamic
//! correction code refines the static prediction for branch outcomes and
//! instruction-cache misses (Fig. 3/4).
//!
//! This crate is the umbrella: it re-exports the subsystem crates and
//! hosts the runnable examples and the cross-crate integration tests.
//!
//! | crate | role |
//! |---|---|
//! | [`isa`] | memory model, ELF32 reader/writer, deterministic PRNG |
//! | [`exec`] | `ExecutionEngine` — dispatch + snapshot/restore interface of every simulator; the shared basic-block layer (`exec::blocks`), the profile/trace-growth layer (`exec::trace`) and the static-analysis dataflow framework (`exec::analyze`) built over it; execution fingerprints; the work-stealing `exec::pool::FleetPool`; single-core, sharded sequential, thread-parallel and pool-scheduled epoch drivers |
//! | [`tricore`] | source ISA, assembler, cycle-accurate golden model (pre-decoded, block-compiled and trace-compiled dispatch cores) |
//! | [`vliw`] | target VLIW ISA, binary container format, simulator (pre-decoded, closure-compiled and trace dispatch cores) |
//! | [`core`] | **the translator** (the paper's contribution) — its CFG is a view over the shared block layer |
//! | [`platform`] | synchronization device, snapshottable (and `Send`) SoC bus + peripherals (including the per-shard CoreLink doorbell endpoint), epoch-barrier shard arbiter with deterministic state merge and O(traffic) journaled delta exchange (`docs/sharding.md`) |
//! | [`rtlsim`] | event-driven RT-level baseline simulator |
//! | [`sim`] | **the front door**: `SimBuilder`/`Session` over every execution vehicle, single-core or sharded (up to 256 cores, with live shard migration via `park_shard`/`adopt_shard`); versioned portable park/resume bytes; the `sim::analyze` lint surface behind the `cabt-analyze` binary |
//! | [`debug`] | generic lockstep driver, dual-translation debugger + RSP packet layer |
//! | [`workloads`] | the paper's benchmark programs (plus the multi-core `producer_consumer` and the doorbell all-to-all `mailbox`) |
//! | [`fleet`] | **the session service**: work-stealing epoch-scheduler pool multiplexing M sessions × N shards, batch driver, `fleet-server` binary |
//! | [`fuzz`] | **continuous differential fuzzing**: seed-reproducible program generator, full-matrix comparison on per-epoch digest chains, shrinker to minimal reproducers, `cabt-fuzz` binary |
//!
//! Execution comes in four dispatch tiers, all bit-identical and all
//! selected as plain `Backend` data. The retained naive interpreters
//! (`DispatchMode::Naive`/`VliwDispatch::Naive`) re-fetch through an
//! address map per step and exist as differential references. The
//! **pre-decoded engines** decode the whole image once at load into
//! dense tables whose entries carry fall-through and branch-target
//! *indices* plus cached operand sets and timing records — an
//! index-chased dispatch ≥2× faster than the naive cores
//! (`predecode_diff` proves bit-identity). The **block-compiled
//! engines** (`DispatchMode::Compiled`/`VliwDispatch::Compiled`) go
//! the paper's final step: the shared basic-block layer
//! ([`cabt_exec::blocks`]) partitions the dispatch tables — the same
//! partition the translator's CFG is built over — and every block is
//! fused at load into a run of specialized closures (operands, fetch
//! line runs and timing classes captured as constants), dispatched
//! block-at-a-time on the golden model for another ~1.5–2×
//! over the pre-decoded core (`BENCH_fig5.json`), bit-identical at
//! every block boundary (`tests/compiled_diff.rs`). The **trace
//! tier** (`DispatchMode::Trace`/`VliwDispatch::Trace`) adds
//! profile-guided superblocks on top: block-edge counters collected
//! during a warm-up window ([`cabt_exec::trace::TraceConfig`]) pick
//! hot chains, which fuse into one dispatch run per step — closure
//! chains with side-exit guards and in-place loop iteration on the
//! golden model, consecutive packet ranges on the VLIW core — for
//! ≥3× over pre-decoded on the golden model and ≥1.5× on the VLIW
//! core (`fir`/`sieve` rows of `BENCH_fig5.json`), still
//! bit-identical at every stop point.
//!
//! Every vehicle — the golden model, the translated platform, *and* the
//! RTL core — implements [`cabt_exec::ExecutionEngine`], including its
//! trait-level snapshot/restore capability, and is constructed through
//! one typed builder: [`cabt_sim::SimBuilder`] takes a workload (inline
//! assembly, an ELF image, or a named `cabt-workloads` entry) and a
//! [`cabt_sim::Backend`] value, and yields a [`cabt_sim::Session`] with
//! the uniform lifecycle `run / step / stats / snapshot / restore /
//! reset` plus per-epoch/per-stop observers. The platform harness, the
//! debugger and the benchmark tables all drive sessions through the
//! trait, which is where new backends plug in — one more `Backend`
//! variant, not another bespoke constructor.
//!
//! Snapshots are *platform-complete*: session snapshots capture the
//! engine, the synchronization device **and** every SoC peripheral
//! (UART logs, timer epochs, scratch-RAM contents), so
//! `snapshot → run → restore → run` replays device behaviour
//! bit-identically. That state capture is what powers the multi-core
//! backend: `Backend::Sharded` builds N engines (up to 256), each with
//! a *private* clone of the SoC device population; shards run one
//! epoch at a time and reconcile at every epoch barrier, where the
//! `ShardArbiter` exchanges journaled device deltas in fixed shard
//! order — O(traffic), with full-image merge as the fallback — and
//! delivers CoreLink doorbell messages (per-shard MMIO: core-id
//! register plus per-core mailboxes, `docs/sharding.md`). Because
//! shards are isolated inside an epoch, the run is *schedule
//! independent*: the sequential round-robin scheduler
//! ([`cabt_exec::run_epochs_sharded`]), the thread-parallel
//! scheduler ([`cabt_exec::run_epochs_parallel`], one worker thread
//! per shard, aggregate throughput scaling with host cores) and the
//! pooled scheduler ([`cabt_exec::run_epochs_pooled`], shard rounds
//! as work items on a fixed `FleetPool` — the NoC-scale driver)
//! produce bit-identical runs — same session lifecycle, merged UART
//! logs, per-shard plus aggregate statistics, live shard migration at
//! barriers ([`cabt_sim::Session::park_shard`]/`adopt_shard`), pinned
//! by `tests/parallel_determinism.rs`:
//!
//! ```
//! use cabt::prelude::*;
//!
//! let w = cabt::workloads::by_name("producer_consumer").unwrap();
//! let mut mc = SimBuilder::workload(&w)
//!     .backend(Backend::sharded(2, Backend::translated(DetailLevel::Static)))
//!     .build()?;
//! mc.run(Limit::Cycles(50_000_000))?;
//! // Core 0 produced into the shared scratch RAM; core 1 consumed and
//! // computed the same checksum.
//! assert_eq!(mc.shard(1).unwrap().read_d(2), w.expected_d2);
//! assert_eq!(mc.sharded_stats().unwrap().uart.len(), 2);
//!
//! // The thread-parallel scheduler simulates the identical run.
//! let mut par = SimBuilder::workload(&w)
//!     .backend(Backend::sharded_parallel(2, Backend::translated(DetailLevel::Static)))
//!     .build()?;
//! par.run(Limit::Cycles(50_000_000))?;
//! assert_eq!(par.sharded_stats(), mc.sharded_stats());
//! # Ok::<(), Box<dyn std::error::Error>>(())
//! ```
//!
//! # Quickstart
//!
//! ```
//! use cabt::prelude::*;
//!
//! let src = r#"
//!     .text
//! _start:
//!     mov  %d0, 6
//!     mov  %d2, 1
//! fact:
//!     mul  %d2, %d2, %d0
//!     addi %d0, %d0, -1
//!     jnz  %d0, fact
//!     debug
//! "#;
//!
//! // Every production vehicle answers the same way — golden and
//! // translated on the pre-decoded, block-compiled and trace
//! // dispatch cores, plus the RTL baseline:
//! for backend in Backend::all() {
//!     let mut s = SimBuilder::asm(src).backend(backend).build()?;
//!     s.run(Limit::Cycles(1_000_000))?;
//!     assert_eq!(s.read_d(2), 720, "{backend}"); // 6!
//! }
//!
//! // The golden model (the paper's evaluation board) is one backend...
//! let mut board = SimBuilder::asm(src).backend(Backend::golden()).build()?;
//! board.run(Limit::Cycles(1_000_000))?;
//! assert_eq!(board.read_d(2), 720); // 6!
//!
//! // ...and the translated prototyping platform (full dynamic
//! // correction: branch prediction + instruction-cache simulation) is
//! // another — same builder, different `Backend` value.
//! let mut session = SimBuilder::asm(src)
//!     .backend(Backend::translated(DetailLevel::Cache))
//!     .platform(PlatformConfig::default())
//!     .build()?;
//! session.run(Limit::Cycles(1_000_000))?;
//! assert_eq!(session.read_d(2), 720);
//!
//! // The translated program generated the source processor's clock
//! // cycles for the attached SoC hardware, tracking the measured count.
//! let generated = session.platform_stats().expect("translated").total_generated();
//! let measured = board.stats().cycles;
//! let dev = (generated as f64 - measured as f64).abs() / measured as f64;
//! assert!(dev < 0.05, "generated cycles track the measured count");
//!
//! // Sessions snapshot and rewind, whatever the backend.
//! let snap = session.snapshot();
//! session.restore(&snap);
//!
//! // Before anything executes, the static analyzer can vet the
//! // program: dataflow passes over the same basic-block partition the
//! // engines dispatch (`docs/static-analysis.md`). The `cabt-analyze`
//! // binary and the opt-in `SimBuilder::strict_lint` gate sit on this.
//! let report = SimBuilder::asm(src).analyze()?;
//! assert!(report.is_clean());
//! assert_eq!(report.loops.len(), 1); // the `fact` countdown loop
//! # Ok::<(), Box<dyn std::error::Error>>(())
//! ```
//!
//! # Fleet quickstart
//!
//! Beyond one session at a time, the [`fleet`] crate runs *batches*:
//! every request becomes epoch-sized work items on a fixed
//! work-stealing pool, so M sessions × N shards share a bounded worker
//! population — and each session's simulation stays bit-identical to a
//! dedicated run, whatever the worker count (pinned per epoch by
//! rolling [`cabt_exec::fingerprint_engine`] digest chains). Sessions
//! also **park** to versioned portable bytes mid-run
//! ([`cabt_sim::Session::park`]) and **resume** on any worker or in
//! another process ([`cabt_sim::Session::resume`]) — the
//! `fleet-server` binary serves run/park/resume over a line protocol
//! (`docs/snapshot-format.md` specifies the byte format):
//!
//! ```
//! use cabt::prelude::*;
//!
//! let pool = FleetPool::new(2);
//! let requests: Vec<FleetRequest> = ["gcd", "sieve"]
//!     .iter()
//!     .map(|w| {
//!         FleetRequest::named(*w)
//!             .backend(Backend::sharded(2, Backend::golden()))
//!             .budget(Limit::Cycles(50_000_000))
//!     })
//!     .collect();
//! for result in run_fleet(&pool, &requests) {
//!     let r = result?;
//!     assert!(r.checksum_ok(), "{}", r.workload);
//! }
//!
//! // Park a running session to portable bytes; resume and finish it
//! // anywhere — another thread, another process, another machine.
//! let mut s = SimBuilder::named("gcd").build()?;
//! s.run(Limit::Retirements(100))?;
//! let bytes = s.park()?;
//! let mut resumed = Session::resume(&bytes)?;
//! resumed.run(Limit::Cycles(50_000_000))?;
//! assert_eq!(resumed.read_d(2), cabt::workloads::by_name("gcd").unwrap().expected_d2);
//! # Ok::<(), Box<dyn std::error::Error>>(())
//! ```

pub use cabt_core as core;
pub use cabt_debug as debug;
pub use cabt_exec as exec;
pub use cabt_fleet as fleet;
pub use cabt_fuzz as fuzz;
pub use cabt_isa as isa;
pub use cabt_platform as platform;
pub use cabt_rtlsim as rtlsim;
pub use cabt_sim as sim;
pub use cabt_tricore as tricore;
pub use cabt_vliw as vliw;
pub use cabt_workloads as workloads;

/// The most common imports in one place.
pub mod prelude {
    pub use cabt_core::{DetailLevel, Granularity, Translated, Translator};
    pub use cabt_debug::{DebugSession, StopReason};
    pub use cabt_exec::{ExecutionEngine, Limit, StopCause};
    pub use cabt_fleet::{run_fleet, run_one, FleetPool, FleetRequest, FleetResult};
    pub use cabt_platform::{Platform, PlatformConfig, SyncRate};
    pub use cabt_sim::{Backend, Session, SessionError, ShardSchedule, SimBuilder};
    pub use cabt_tricore::asm::assemble;
    pub use cabt_tricore::sim::Simulator;
    pub use cabt_workloads::Workload;
}
